/**
 * @file
 * Memory-shape passes: symbolic stride / footprint analysis over the
 * IR's access provenance (memStream / memOffset / memBytes). These
 * mirror the trace analyzer's memory rules instruction-for-instruction
 * — the trace rules never needed the IssueTrace, so the static
 * versions reach identical finding sets by construction; the IR adds
 * loop context (which loop walks the stream, at what affine stride) to
 * the messages and fix hints.
 */

#include <map>

#include "analysis/static/passes.h"
#include "common/logging.h"

namespace vespera::analysis {

namespace {

const char *
slotName(tpc::Slot slot)
{
    switch (slot) {
      case tpc::Slot::Load:
        return "load";
      case tpc::Slot::Store:
        return "store";
      case tpc::Slot::Vector:
        return "vector";
      case tpc::Slot::Scalar:
        return "scalar";
    }
    return "?";
}

/** "in loop #k (body N instrs, T trips)" or "" outside loops. */
std::string
loopContext(const StaticIr &ir, std::size_t index)
{
    const Loop *loop = ir.innermostLoopAt(index);
    if (loop == nullptr)
        return "";
    return strfmt(" in loop #%d (body %zu instrs, %lld trips)",
                  static_cast<int>(loop->id), loop->bodyLength,
                  static_cast<long long>(loop->tripCount));
}

} // namespace

void
passNarrowAccess(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    const Bytes granule = ctx.options.params.granule;
    struct Group
    {
        std::int64_t first = -1;
        int count = 0;
        Bytes wasted = 0;
        tpc::Slot slot = tpc::Slot::Load;
    };
    // One finding per distinct (label, size) call-site shape, exactly
    // like the trace rule.
    std::map<std::pair<std::int16_t, Bytes>, Group> groups;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (!tpc::isGlobalMemAccess(instr) || instr.memBytes >= granule)
            continue;
        Group &g = groups[{instr.opLabel, instr.memBytes}];
        if (g.first < 0) {
            g.first = static_cast<std::int64_t>(i);
            g.slot = instr.slot;
        }
        g.count++;
        g.wasted += granule - instr.memBytes;
    }
    for (const auto &[key, g] : groups) {
        const Bytes bytes = key.second;
        const double waste_frac =
            1.0 - static_cast<double>(bytes) /
                      static_cast<double>(granule);
        Diagnostic d;
        d.rule = rules::narrowAccess;
        d.severity = Severity::Warning;
        d.instrIndex = g.first;
        d.opLabel = program.label(key.first);
        d.wastedBytes = g.wasted;
        d.costCycles = g.count *
                       ctx.options.params.memIssueIntervalCycles *
                       waste_frac;
        d.message = strfmt(
            "%d global %s access%s of %llu B each%s, below the %llu B "
            "granularity: %.0f%% of the bus traffic is discarded",
            g.count, slotName(g.slot), g.count == 1 ? "" : "es",
            static_cast<unsigned long long>(bytes),
            loopContext(ctx.ir, static_cast<std::size_t>(g.first))
                .c_str(),
            static_cast<unsigned long long>(granule),
            100.0 * waste_frac);
        d.fixHint = strfmt(
            "widen the access to the %llu B granule or batch "
            "neighbouring elements into one load/store",
            static_cast<unsigned long long>(granule));
        ctx.sink.add(std::move(d));
    }
}

void
passRandomShouldStream(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    struct Run
    {
        std::int64_t first = -1;
        int length = 0;
    };
    struct StreamState
    {
        std::int64_t nextOffset = -1;
        Run current;
        Run best;
        int sequential = 0;
    };
    // Sequential-run analysis over the IR's per-stream offsets (same
    // walk as the trace rule, so the finding sets agree).
    std::map<std::uint32_t, StreamState> streams;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (!tpc::isGlobalMemAccess(instr) ||
            instr.access != tpc::Access::Random ||
            instr.memOffset < 0 || instr.memStream == 0) {
            continue;
        }
        StreamState &st = streams[instr.memStream];
        if (st.nextOffset == instr.memOffset && st.current.length > 0) {
            st.current.length++;
            st.sequential++;
        } else {
            if (st.current.length > st.best.length)
                st.best = st.current;
            st.current = {static_cast<std::int64_t>(i), 1};
        }
        st.nextOffset =
            instr.memOffset + static_cast<std::int64_t>(instr.memBytes);
    }
    for (auto &[id, st] : streams) {
        if (st.current.length > st.best.length)
            st.best = st.current;
        if (st.best.length < ctx.options.minSequentialRun)
            continue;
        const auto first_index =
            static_cast<std::size_t>(st.best.first);
        const tpc::Instr &first = program.instrs()[first_index];
        // Symbolic confirmation: when the run sits in a recovered
        // loop whose stride analysis proved the walk affine and
        // contiguous, say so — the fix is then provably safe.
        std::string affine_note;
        if (const Loop *loop = ctx.ir.innermostLoopAt(first_index)) {
            for (const AffineAccess &a : loop->accesses) {
                if (a.stream == id && a.affine &&
                    a.stride ==
                        static_cast<std::int64_t>(a.bytes)) {
                    affine_note = strfmt(
                        "; loop #%d walks it at a provably affine "
                        "+%lld B/trip stride",
                        static_cast<int>(loop->id),
                        static_cast<long long>(a.stride));
                    break;
                }
            }
        }
        const int saved = ctx.options.params.loadLatencyRandom -
                          ctx.options.params.loadLatencyStream;
        Diagnostic d;
        d.rule = rules::randomShouldStream;
        d.severity = Severity::Warning;
        d.instrIndex = st.best.first;
        d.opLabel = program.label(first.opLabel);
        d.costCycles = static_cast<double>(st.best.length) * saved;
        d.message = strfmt(
            "%d Random-tagged accesses on stream #%u walk sequential "
            "addresses (longest run %d)%s",
            st.sequential + 1, id, st.best.length,
            affine_note.c_str());
        d.fixHint = strfmt(
            "tag the access Access::Stream so hardware prefetch "
            "applies, saving up to %d cycles of latency per access",
            saved);
        ctx.sink.add(std::move(d));
    }
}

void
passDeadValue(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    struct Group
    {
        std::int64_t first = -1;
        int count = 0;
        bool isLoad = false;
    };
    std::map<std::int16_t, Group> groups;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.dst < 0 ||
            !ctx.ir.users[static_cast<std::size_t>(instr.dst)].empty())
            continue;
        Group &g = groups[instr.opLabel];
        if (g.first < 0) {
            g.first = static_cast<std::int64_t>(i);
            g.isLoad = instr.slot == tpc::Slot::Load ||
                       (instr.slot == tpc::Slot::Scalar &&
                        instr.memBytes > 0);
        }
        g.count++;
    }
    for (const auto &[label, g] : groups) {
        Diagnostic d;
        d.rule = rules::deadValue;
        d.severity = g.isLoad ? Severity::Info : Severity::Warning;
        d.instrIndex = g.first;
        d.opLabel = program.label(label);
        d.message = strfmt(
            "%d %s result%s with an empty use list%s", g.count,
            program.label(label).empty() ? "instruction"
                                         : program.label(label).c_str(),
            g.count == 1 ? "" : "s",
            g.isLoad ? " (prefetch staging, or a wasted load)"
                     : " — dead compute occupies a VLIW slot for "
                       "nothing");
        d.fixHint = g.isLoad
                        ? "drop the load, or consume it — prefetch "
                          "staging should feed a later iteration"
                        : "delete the computation or store its result";
        ctx.sink.add(std::move(d));
    }
}

void
passRedundantReload(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    struct StreamState
    {
        std::map<std::pair<std::int64_t, Bytes>, int> loads;
        Bytes uniqueBytes = 0;
        Bytes reloadedBytes = 0;
        int reloads = 0;
        std::int64_t firstReload = -1;
        std::int16_t label = -1;
    };
    std::map<std::uint32_t, StreamState> streams;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.slot != tpc::Slot::Load ||
            !tpc::isGlobalMemAccess(instr) || instr.memOffset < 0 ||
            instr.memStream == 0) {
            continue;
        }
        StreamState &st = streams[instr.memStream];
        int &count = st.loads[{instr.memOffset, instr.memBytes}];
        if (count == 0) {
            st.uniqueBytes += instr.memBytes;
        } else {
            st.reloadedBytes += instr.memBytes;
            st.reloads++;
            if (st.firstReload < 0) {
                st.firstReload = static_cast<std::int64_t>(i);
                st.label = instr.opLabel;
            }
        }
        count++;
    }
    for (const auto &[id, st] : streams) {
        if (st.reloads == 0)
            continue;
        const bool fits =
            st.uniqueBytes <= ctx.options.localMemoryBytes;
        Diagnostic d;
        d.rule = rules::redundantReload;
        d.severity = fits ? Severity::Warning : Severity::Info;
        d.instrIndex = st.firstReload;
        d.opLabel = program.label(st.label);
        d.wastedBytes = st.reloadedBytes;
        d.costCycles =
            static_cast<double>(
                (st.reloadedBytes + ctx.options.params.granule - 1) /
                ctx.options.params.granule) *
            ctx.options.params.memIssueIntervalCycles;
        d.message = strfmt(
            "%d loads re-read %llu B already loaded from stream #%u "
            "(unique working set %llu B %s the %llu B local memory)",
            st.reloads,
            static_cast<unsigned long long>(st.reloadedBytes), id,
            static_cast<unsigned long long>(st.uniqueBytes),
            fits ? "fits in" : "exceeds",
            static_cast<unsigned long long>(
                ctx.options.localMemoryBytes));
        d.fixHint = fits
                        ? "stage the reused block once in local memory"
                        : "tile the working set through local memory";
        ctx.sink.add(std::move(d));
    }
}

void
passLocalOverflow(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    Bytes high_water = 0;
    std::int64_t worst = -1;
    std::int16_t label = -1;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.access != tpc::Access::Local || instr.memOffset < 0)
            continue;
        const Bytes end =
            static_cast<Bytes>(instr.memOffset) + instr.memBytes;
        if (end > high_water) {
            high_water = end;
            worst = static_cast<std::int64_t>(i);
            label = instr.opLabel;
        }
    }
    ctx.report.report.localBytesUsed = high_water;
    if (high_water == 0)
        return;
    const double frac =
        static_cast<double>(high_water) /
        static_cast<double>(ctx.options.localMemoryBytes);
    if (frac <= 0.9)
        return;
    Diagnostic d;
    d.rule = rules::localOverflow;
    d.severity = frac > 1.0 ? Severity::Error : Severity::Warning;
    d.instrIndex = worst;
    d.opLabel = program.label(label);
    d.wastedBytes = high_water > ctx.options.localMemoryBytes
                        ? high_water - ctx.options.localMemoryBytes
                        : 0;
    d.message = strfmt(
        "local-memory working set %llu B %s the %llu B capacity "
        "(%.0f%%)",
        static_cast<unsigned long long>(high_water),
        frac > 1.0 ? "exceeds" : "approaches",
        static_cast<unsigned long long>(ctx.options.localMemoryBytes),
        100.0 * frac);
    d.fixHint = frac > 1.0
                    ? "the kernel would fault on hardware; tile the "
                      "staging buffer"
                    : "leave headroom or spills will follow the next "
                      "shape bump";
    ctx.sink.add(std::move(d));
}

} // namespace vespera::analysis
