#include "analysis/static/cost_model.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace vespera::analysis {

StaticSchedule
scheduleStatic(const StaticIr &ir, const tpc::TpcParams &params)
{
    vassert(ir.valid(), "cannot schedule IR with SSA violations");
    StaticSchedule sched;
    if (ir.program == nullptr || ir.program->empty())
        return sched;
    const auto &instrs = ir.program->instrs();
    sched.instrs.reserve(instrs.size());

    // Machine state, re-derived from the IR's def-use edges: when each
    // SSA value's result is consumable, when each VLIW slot frees up,
    // and when the global-memory interface can accept the next
    // granule burst.
    std::vector<double> value_ready(
        static_cast<std::size_t>(ir.program->numValues()), 0.0);
    std::array<double, tpc::numSlots> slot_free{};
    std::array<std::uint64_t, tpc::numSlots> slot_count{};
    double mem_free = 0;
    double mem_busy_cycles = 0;
    double last_issue = 0;
    double completion = 0;

    for (std::size_t i = 0; i < instrs.size(); i++) {
        const tpc::Instr &instr = instrs[i];
        ScheduledInstr rec;

        // In-order issue: never before the previous instruction.
        double t = last_issue;
        tpc::StallCause cause = tpc::StallCause::None;
        std::int32_t critical_src = -1;
        // Structural hazard: the slot accepts one instruction/cycle.
        const auto slot = static_cast<std::size_t>(instr.slot);
        if (slot_free[slot] > t) {
            t = slot_free[slot];
            cause = tpc::StallCause::SlotBusy;
        }
        // Data hazard: all sources' results must be consumable.
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src >= 0 &&
                value_ready[static_cast<std::size_t>(src)] > t) {
                t = value_ready[static_cast<std::size_t>(src)];
                cause = tpc::StallCause::Dependency;
                critical_src = src;
            }
        }
        // Memory hazard: the global interface moves whole granules at
        // a bounded sustained rate; a busy interface backpressures.
        const double latency = tpc::resultLatency(instr, params);
        if (tpc::isGlobalMemAccess(instr)) {
            if (mem_free > t) {
                t = mem_free;
                cause = tpc::StallCause::Memory;
                critical_src = -1;
            }
            const std::uint64_t txns =
                (instr.memBytes + params.granule - 1) / params.granule;
            const double occupancy =
                static_cast<double>(txns) *
                params.memIssueIntervalCycles;
            mem_free = t + occupancy;
            mem_busy_cycles += occupancy;
        }

        if (instr.dst >= 0)
            value_ready[static_cast<std::size_t>(instr.dst)] =
                t + latency;

        const double stall = t > last_issue + 1 ? t - last_issue - 1 : 0;
        rec.issueCycle = t;
        rec.stallCycles = stall;
        rec.cause = stall > 0 ? cause : tpc::StallCause::None;
        rec.criticalSrc =
            rec.cause == tpc::StallCause::Dependency ? critical_src
                                                     : -1;
        sched.instrs.push_back(rec);
        sched.stallCycles += stall;
        switch (rec.cause) {
          case tpc::StallCause::Dependency:
            sched.dependencyStallCycles += stall;
            break;
          case tpc::StallCause::Memory:
            sched.memoryStallCycles += stall;
            break;
          case tpc::StallCause::SlotBusy:
            sched.slotStallCycles += stall;
            break;
          case tpc::StallCause::None:
            break;
        }

        slot_free[slot] = t + 1;
        slot_count[slot]++;
        last_issue = t;
        completion = std::max(completion, t + std::max(latency, 1.0));
    }

    sched.cycles = std::max(completion, mem_free);
    sched.drainStallCycles =
        std::max(0.0, sched.cycles - last_issue - 1);
    sched.stallCycles += sched.drainStallCycles;

    // Analytic roofline terms.
    {
        std::vector<double> finish(
            static_cast<std::size_t>(ir.program->numValues()), 0.0);
        for (const tpc::Instr &instr : instrs) {
            double start = 0;
            for (std::int32_t src :
                 {instr.src0, instr.src1, instr.src2}) {
                if (src >= 0) {
                    start = std::max(
                        start, finish[static_cast<std::size_t>(src)]);
                }
            }
            const double done =
                start +
                std::max(tpc::resultLatency(instr, params), 1.0);
            if (instr.dst >= 0)
                finish[static_cast<std::size_t>(instr.dst)] = done;
            sched.criticalPathBound =
                std::max(sched.criticalPathBound, done);
        }
    }
    for (int s = 0; s < tpc::numSlots; s++) {
        sched.slotResourceBound = std::max(
            sched.slotResourceBound,
            static_cast<double>(slot_count[static_cast<std::size_t>(s)]));
    }
    sched.memoryBound = mem_busy_cycles;
    return sched;
}

} // namespace vespera::analysis
