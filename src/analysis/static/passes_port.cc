/**
 * @file
 * Migration-aware passes: explain why a CUDA kernel lowered by
 * port::lowerAndRun trails its hand-written TPC-C counterpart.
 *
 * The port layer labels every instruction it emits with a "port:*" tag
 * naming the lowering decision that produced it (port:pred-mask,
 * port:ld-shatter, port:shared-st, ...). These passes read those tags
 * and attribute the ported program's overhead to the CUDA idiom that
 * caused it — SIMT divergence emulated with mask/select, coalesced
 * warp accesses shattered into per-lane transactions, shared-memory
 * staging that is redundant on a TPC, and thread-order issue that
 * forfeits the latency hiding the GPU's warp scheduler provided.
 * Every pass no-ops on programs without port labels, so hand-written
 * kernel findings are untouched.
 */

#include <algorithm>
#include <map>
#include <string_view>

#include "analysis/static/passes.h"
#include "common/logging.h"

namespace vespera::analysis {

namespace {

bool
isPortLabel(std::string_view label)
{
    return label.rfind("port:", 0) == 0;
}

/** True when the trace was emitted by the CUDA->TPC port layer. */
bool
isPortedProgram(const tpc::Program &program)
{
    return std::any_of(
        program.labels().begin(), program.labels().end(),
        [](const std::string &l) { return isPortLabel(l); });
}

bool
hasLabel(const tpc::Program &program, const tpc::Instr &instr,
         std::string_view label)
{
    return program.label(instr.opLabel) == label;
}

/** Issue + stall cycles the schedule charged to instruction i. */
double
instrCycles(const StaticSchedule &schedule, std::size_t i)
{
    if (i >= schedule.instrs.size())
        return 1.0;
    return 1.0 + schedule.instrs[i].stallCycles;
}

} // namespace

void
passDivergenceEmulation(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    if (!isPortedProgram(program))
        return;
    int masks = 0, blends = 0;
    double cost = 0;
    std::int64_t first = -1;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        const bool mask = hasLabel(program, instr, "port:pred-mask");
        const bool blendI =
            hasLabel(program, instr, "port:pred-blend");
        if (!mask && !blendI)
            continue;
        if (first < 0)
            first = static_cast<std::int64_t>(i);
        masks += mask ? 1 : 0;
        blends += blendI ? 1 : 0;
        cost += instrCycles(ctx.schedule, i);
    }
    if (masks + blends == 0)
        return;
    Diagnostic d;
    d.rule = rules::divergenceEmulation;
    d.severity = Severity::Warning;
    d.instrIndex = first;
    d.opLabel = blends > 0 ? "port:pred-blend" : "port:pred-mask";
    d.costCycles = cost;
    d.message = strfmt(
        "SIMT divergence emulated in software: %d mask and %d "
        "blend/merge instructions (predicated CUDA lanes have no TPC "
        "branch equivalent, so every divergent path executes and "
        "merges by select)",
        masks, blends);
    d.fixHint = "restructure the kernel branch-free (fold the "
                "predicate into arithmetic, pad the data layout) or "
                "keep predicates strip-uniform so whole strips skip "
                "the path";
    ctx.sink.add(std::move(d));
}

void
passCoalescingLoss(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    if (!isPortedProgram(program))
        return;
    const Bytes granule = ctx.options.params.granule;

    // Flavor 1: warp accesses the lowering had to shatter into
    // per-lane transactions (strided / data-dependent addressing).
    struct Shatter
    {
        std::int64_t first = -1;
        int count = 0;
        Bytes wasted = 0;
        int randoms = 0;
    };
    std::map<std::int16_t, Shatter> shattered;
    // Flavor 2: warp-wide accesses that stayed vectorized but fill
    // only part of the granule (warpSize * 4 B < granule).
    struct Narrow
    {
        std::int64_t first = -1;
        int count = 0;
        Bytes wasted = 0;
        Bytes bytes = 0;
    };
    std::map<std::int16_t, Narrow> narrow;

    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (!tpc::isGlobalMemAccess(instr))
            continue;
        const std::string &label = program.label(instr.opLabel);
        if (label == "port:ld-shatter" ||
            label == "port:st-shatter") {
            Shatter &s = shattered[instr.opLabel];
            if (s.first < 0)
                s.first = static_cast<std::int64_t>(i);
            s.count++;
            s.wasted += granule > instr.memBytes
                            ? granule - instr.memBytes
                            : 0;
            s.randoms += instr.access == tpc::Access::Random ? 1 : 0;
        } else if ((label == "port:ld-warp" ||
                    label == "port:st-warp" ||
                    label == "port:ld-uniform") &&
                   instr.memBytes < granule) {
            Narrow &n = narrow[instr.opLabel];
            if (n.first < 0) {
                n.first = static_cast<std::int64_t>(i);
                n.bytes = instr.memBytes;
            }
            n.count++;
            n.wasted += granule - instr.memBytes;
        }
    }

    for (const auto &[label, s] : shattered) {
        Diagnostic d;
        d.rule = rules::coalescingLoss;
        d.severity = Severity::Warning;
        d.instrIndex = s.first;
        d.opLabel = program.label(label);
        d.wastedBytes = s.wasted;
        d.costCycles = static_cast<double>(s.count) *
                       ctx.options.params.memIssueIntervalCycles;
        d.message = strfmt(
            "%d warp access%s lost coalescing in the port: the lane "
            "addresses are not unit-stride, so each became a per-lane "
            "4 B transaction (%d of them full-latency random)",
            s.count, s.count == 1 ? "" : "es", s.randoms);
        d.fixHint = strfmt(
            "re-lay the data so consecutive lanes touch consecutive "
            "addresses (the CUDA coalescing rule is the TPC "
            "vectorization rule), letting one %llu B vector access "
            "replace the lane transactions",
            static_cast<unsigned long long>(granule));
        ctx.sink.add(std::move(d));
    }
    for (const auto &[label, n] : narrow) {
        Diagnostic d;
        d.rule = rules::coalescingLoss;
        d.severity = Severity::Info;
        d.instrIndex = n.first;
        d.opLabel = program.label(label);
        d.wastedBytes = n.wasted;
        d.costCycles = static_cast<double>(n.count) *
                       ctx.options.params.memIssueIntervalCycles *
                       (1.0 - static_cast<double>(n.bytes) /
                                  static_cast<double>(granule));
        d.message = strfmt(
            "%d warp-wide access%s of %llu B each: a 32-lane CUDA "
            "warp fills only part of the %llu B TPC granule",
            n.count, n.count == 1 ? "" : "es",
            static_cast<unsigned long long>(n.bytes),
            static_cast<unsigned long long>(granule));
        d.fixHint = "lower with LowerOptions::warpsPerStrip = 2 to "
                    "fuse two warps into one full-granule strip";
        ctx.sink.add(std::move(d));
    }
}

void
passStagingRedundancy(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    if (!isPortedProgram(program))
        return;
    bool any_shared_load = false;
    for (const tpc::Instr &instr : program.instrs())
        if (hasLabel(program, instr, "port:shared-ld"))
            any_shared_load = true;
    if (!any_shared_load)
        return;

    // Shared stores whose stored value is exactly a global load's
    // result: the classic CUDA staging idiom (global -> shared ->
    // consume), redundant on a TPC where the loaded vector is already
    // register-resident.
    int staged = 0;
    Bytes bytes = 0;
    std::int64_t first = -1;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (!hasLabel(program, instr, "port:shared-st") ||
            instr.slot != tpc::Slot::Store || instr.src0 < 0)
            continue;
        const auto value = static_cast<std::size_t>(instr.src0);
        if (value >= ctx.ir.defIndex.size())
            continue;
        const std::int64_t def = ctx.ir.defIndex[value];
        if (def < 0)
            continue;
        const tpc::Instr &producer =
            program.instrs()[static_cast<std::size_t>(def)];
        if (producer.slot != tpc::Slot::Load ||
            !tpc::isGlobalMemAccess(producer))
            continue;
        if (first < 0)
            first = static_cast<std::int64_t>(i);
        staged++;
        bytes += instr.memBytes;
    }
    if (staged == 0)
        return;
    Diagnostic d;
    d.rule = rules::stagingRedundancy;
    d.severity = Severity::Info;
    d.instrIndex = first;
    d.opLabel = "port:shared-st";
    d.wastedBytes = 2 * bytes; // Written once, read back once.
    d.costCycles = 2.0 * static_cast<double>(staged) *
                   ctx.options.params.loadLatencyLocal;
    d.message = strfmt(
        "%d shared-memory store%s stage unmodified global-load "
        "results (__shared__ tiling ported verbatim): on a TPC the "
        "loaded vector is already register-resident, so the local "
        "round-trip of %llu B buys nothing",
        staged, staged == 1 ? "" : "s",
        static_cast<unsigned long long>(bytes));
    d.fixHint = "forward the loaded value directly to its consumers "
                "and drop the __shared__ tile (keep local memory for "
                "genuinely reused or transposed data)";
    ctx.sink.add(std::move(d));
}

void
passLoweredPipelining(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    if (!isPortedProgram(program))
        return;
    if (ctx.schedule.cycles <= 0)
        return;
    const double frac =
        ctx.schedule.dependencyStallCycles / ctx.schedule.cycles;
    if (frac < ctx.options.portStallFrac)
        return;
    // Anchor the finding at the worst dependency stall.
    std::int64_t worst = -1;
    double worst_stall = 0;
    for (std::size_t i = 0; i < ctx.schedule.instrs.size(); i++) {
        const ScheduledInstr &s = ctx.schedule.instrs[i];
        if (s.cause == tpc::StallCause::Dependency &&
            s.stallCycles > worst_stall) {
            worst_stall = s.stallCycles;
            worst = static_cast<std::int64_t>(i);
        }
    }
    Diagnostic d;
    d.rule = rules::loweredPipelining;
    d.severity = Severity::Warning;
    d.instrIndex = worst;
    if (worst >= 0) {
        const tpc::Instr &instr =
            program.instrs()[static_cast<std::size_t>(worst)];
        d.opLabel = program.label(instr.opLabel);
    }
    d.costCycles = ctx.schedule.dependencyStallCycles;
    d.message = strfmt(
        "%.0f%% of issue cycles stall on dependences: the port "
        "replays each CUDA thread's chain in order, losing the "
        "latency hiding the GPU's warp scheduler provided for free",
        100.0 * frac);
    d.fixHint = "re-lower with LowerOptions::stripUnroll >= 4 so "
                "independent strips interleave and hide the "
                "load/vector latencies (software pipelining)";
    ctx.sink.add(std::move(d));
}

} // namespace vespera::analysis
