#include "analysis/migrate/migrate_report.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace vespera::analysis {

namespace {

json::Value
num(double v)
{
    return json::Value::makeNumber(v);
}

json::Value
str(std::string s)
{
    return json::Value::makeString(std::move(s));
}

json::Value
findingJson(const Diagnostic &d)
{
    std::map<std::string, json::Value> m;
    m["rule"] = str(d.rule);
    m["severity"] = str(severityName(d.severity));
    m["instr"] = num(static_cast<double>(d.instrIndex));
    m["op"] = str(d.opLabel);
    m["message"] = str(d.message);
    m["fix_hint"] = str(d.fixHint);
    m["cost_cycles"] = num(d.costCycles);
    m["wasted_bytes"] = num(static_cast<double>(d.wastedBytes));
    m["migration"] = json::Value::makeBool(isMigrationRule(d.rule));
    return json::Value::makeObject(std::move(m));
}

/** "73.0%" with one decimal. */
std::string
pct(double frac)
{
    return strfmt("%.1f%%", 100.0 * frac);
}

} // namespace

bool
isMigrationRule(const std::string &rule)
{
    return rule == rules::divergenceEmulation ||
           rule == rules::coalescingLoss ||
           rule == rules::stagingRedundancy ||
           rule == rules::loweredPipelining;
}

json::Value
migrateReportJson(const std::vector<MigrateEntry> &entries)
{
    std::map<std::string, json::Value> root;
    root["schema"] = str("vespera-lint-migrate/v1");
    std::vector<json::Value> kernels;
    kernels.reserve(entries.size());
    int parity_failures = 0;
    for (const MigrateEntry &e : entries) {
        std::map<std::string, json::Value> m;
        m["kernel"] = str(e.kernel);
        m["shape"] = str(e.shape);
        m["notes"] = str(e.notes);
        m["parity"] = json::Value::makeBool(e.parity);
        m["max_rel_error"] = num(e.maxRelError);
        m["ported_time"] = num(e.portedTime);
        m["ported_cycles"] = num(e.portedCycles);
        m["hand_time"] = num(e.handTime);
        m["achieved_fraction"] = num(e.achievedFraction);
        m["a100_time"] = num(e.a100Time);
        m["slowdown_vs_a100"] = num(e.slowdownVsA100);
        {
            std::vector<json::Value> findings;
            const auto &diags = e.analysis.report.diagnostics;
            findings.reserve(diags.size());
            int migration = 0;
            for (const Diagnostic &d : diags) {
                findings.push_back(findingJson(d));
                migration += isMigrationRule(d.rule) ? 1 : 0;
            }
            m["findings"] = json::Value::makeArray(std::move(findings));
            m["migration_findings"] = num(migration);
        }
        if (!e.parity)
            parity_failures++;
        kernels.push_back(json::Value::makeObject(std::move(m)));
    }
    root["kernels"] = json::Value::makeArray(std::move(kernels));
    {
        std::map<std::string, json::Value> totals;
        totals["kernels"] = num(static_cast<double>(entries.size()));
        totals["parity_failures"] = num(parity_failures);
        root["totals"] = json::Value::makeObject(std::move(totals));
    }
    return json::Value::makeObject(std::move(root));
}

std::string
migrateReportText(const std::vector<MigrateEntry> &entries,
                  bool verbose)
{
    std::ostringstream os;
    int parity_failures = 0;
    for (const MigrateEntry &e : entries) {
        if (!e.parity)
            parity_failures++;
        char line[320];
        std::snprintf(
            line, sizeof(line),
            "%s %-20s [%s] %s of hand (ported %.2f us, hand %.2f "
            "us); %.2fx vs A100 est\n",
            e.parity ? " OK " : "FAIL", e.kernel.c_str(),
            e.shape.c_str(), pct(e.achievedFraction).c_str(),
            1e6 * e.portedTime, 1e6 * e.handTime, e.slowdownVsA100);
        os << line;
        if (!e.parity) {
            std::snprintf(line, sizeof(line),
                          "      parity FAILED: max rel error %.3e\n",
                          e.maxRelError);
            os << line;
        }
        // The gap explanation: migration-aware findings always shown;
        // generic analyzer findings only with --verbose.
        for (const Diagnostic &d : e.analysis.report.diagnostics) {
            if (!verbose && !isMigrationRule(d.rule))
                continue;
            os << "      " << severityName(d.severity) << ": ["
               << d.rule << "] " << d.message;
            if (d.costCycles > 0) {
                std::snprintf(line, sizeof(line), " [~%.0f cycles]",
                              d.costCycles);
                os << line;
            }
            os << "\n";
            if (!d.fixHint.empty())
                os << "        fix: " << d.fixHint << "\n";
        }
        if (verbose && !e.notes.empty())
            os << "      notes: " << e.notes << "\n";
    }
    char totals[160];
    std::snprintf(totals, sizeof(totals),
                  "%zu kernels migrated: %d parity failure%s\n",
                  entries.size(), parity_failures,
                  parity_failures == 1 ? "" : "s");
    os << totals;
    return os.str();
}

json::Value
migrateBaselineJson(const std::vector<MigrateEntry> &entries)
{
    std::map<std::string, json::Value> kernels;
    for (const MigrateEntry &e : entries) {
        std::map<std::string, json::Value> m;
        m["parity"] = json::Value::makeBool(e.parity);
        m["achieved_fraction"] = num(e.achievedFraction);
        kernels[e.kernel] = json::Value::makeObject(std::move(m));
    }
    std::map<std::string, json::Value> root;
    root["schema"] = str("vespera-lint-migrate-baseline/v1");
    root["kernels"] = json::Value::makeObject(std::move(kernels));
    return json::Value::makeObject(std::move(root));
}

BaselineCheck
checkMigrateBaseline(const std::vector<MigrateEntry> &entries,
                     const json::Value &baseline,
                     double fractionSlack)
{
    BaselineCheck out;
    const json::Value *kernels = baseline.find("kernels");
    for (const MigrateEntry &e : entries) {
        const json::Value *base =
            kernels != nullptr ? kernels->find(e.kernel) : nullptr;
        if (base == nullptr) {
            // New corpus entries must land functionally correct.
            if (!e.parity) {
                out.ok = false;
                out.failures.push_back(strfmt(
                    "%s: new kernel fails parity (max rel error %.3e)",
                    e.kernel.c_str(), e.maxRelError));
            }
            continue;
        }
        const json::Value *parity = base->find("parity");
        if (parity != nullptr && parity->isBool() &&
            parity->boolean() && !e.parity) {
            out.ok = false;
            out.failures.push_back(
                strfmt("%s: parity regressed (max rel error %.3e)",
                       e.kernel.c_str(), e.maxRelError));
        }
        const json::Value *frac = base->find("achieved_fraction");
        if (frac != nullptr && frac->isNumber() &&
            e.achievedFraction < frac->number() - fractionSlack) {
            out.ok = false;
            out.failures.push_back(strfmt(
                "%s: achieved fraction regressed %.3f -> %.3f "
                "(baseline allows -%.2f)",
                e.kernel.c_str(), frac->number(),
                e.achievedFraction, fractionSlack));
        }
    }
    return out;
}

} // namespace vespera::analysis
