#include "analysis/migrate/scorecard.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/kernel_registry.h"
#include "common/logging.h"
#include "obs/counters.h"
#include "port/lower.h"
#include "port/reference.h"

namespace vespera::analysis {

namespace {

/** Max per-element relative error across the desc's output buffers. */
double
maxRelativeError(const port::CudaKernelDesc &desc,
                 const port::PortRun &run,
                 const port::ReferenceResult &ref)
{
    double worst = 0;
    for (std::size_t b = 0; b < desc.buffers.size(); b++) {
        if (!desc.buffers[b].output)
            continue;
        const tpc::Tensor &t = (*run.tensors)[b];
        const std::vector<float> &want = ref.buffers[b];
        for (std::int64_t i = 0; i < desc.buffers[b].elems; i++) {
            const double got = t.at({i, 0, 0, 0, 0});
            const double exp = want[static_cast<std::size_t>(i)];
            const double denom = std::max(1.0, std::fabs(exp));
            worst = std::max(worst, std::fabs(got - exp) / denom);
        }
    }
    return worst;
}

} // namespace

MigrateEntry
migrateKernel(const port::CorpusEntry &entry,
              const MigrateOptions &options)
{
    MigrateEntry out;
    out.kernel = entry.desc.name;
    out.shape = entry.desc.shape;
    out.notes = entry.notes;

    // Lower and run under serial trace capture; keep the tensors for
    // the parity check and the largest per-TPC trace for analysis.
    std::optional<port::PortRun> run;
    const tpc::Program program = captureTrace(
        [&] { run = port::lowerAndRun(entry.desc, entry.lower); });

    const port::ReferenceResult ref = port::runReference(entry.desc);
    out.maxRelError = maxRelativeError(entry.desc, *run, ref);
    out.parity = out.maxRelError <= options.parityTolerance;

    out.portedTime = run->launch.time;
    out.handTime = entry.handTime ? entry.handTime() : 0;
    out.achievedFraction =
        out.portedTime > 0 ? out.handTime / out.portedTime : 0;
    out.a100Time = entry.a100Time ? entry.a100Time() : 0;
    out.slowdownVsA100 =
        out.a100Time > 0 ? out.portedTime / out.a100Time : 0;

    out.analysis = analyzeProgramStatic(program, options.analyzer);
    out.portedCycles = out.analysis.predictedCycles();

    if (options.exportCounters) {
        obs::CounterRegistry &reg = obs::CounterRegistry::instance();
        reg.counter("port.kernels").add(1.0);
        if (!out.parity)
            reg.counter("port.parity_failures").add(1.0);
        reg.counter("port.findings")
            .add(static_cast<double>(
                out.analysis.report.diagnostics.size()));
    }
    return out;
}

std::vector<MigrateEntry>
runMigrationCorpus(const MigrateOptions &options)
{
    std::vector<MigrateEntry> out;
    const auto &corpus = port::migrationCorpus();
    out.reserve(corpus.size());
    for (const port::CorpusEntry &entry : corpus)
        out.push_back(migrateKernel(entry, options));
    return out;
}

} // namespace vespera::analysis
