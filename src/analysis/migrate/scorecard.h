/**
 * @file
 * The CUDA->TPC migration scorecard (vespera-lint migrate).
 *
 * For every kernel in the migration corpus (port/corpus.h) the
 * scorecard answers the three questions a porting effort asks:
 *
 *  1. Is the port *correct*? The lowered program's outputs are
 *     compared element-wise against the lockstep CUDA reference
 *     interpreter (port/reference.h).
 *  2. How *fast* is it? The lowered program's simulated time is
 *     divided into the hand-written TPC-C comparator's time — the
 *     achieved fraction of hand performance — and contrasted with the
 *     A100 SIMT cost-model estimate.
 *  3. *Why* is it slow? The captured trace runs through the static
 *     analyzer, whose migration-aware passes (passes_port.cc)
 *     attribute the gap to the CUDA idiom that caused it, each with a
 *     concrete fix hint.
 *
 * Publishes port.kernels / port.parity_failures / port.findings
 * counters (serial capture path only; no dispatcher worker touches the
 * registry).
 */

#ifndef VESPERA_ANALYSIS_MIGRATE_SCORECARD_H
#define VESPERA_ANALYSIS_MIGRATE_SCORECARD_H

#include <string>
#include <vector>

#include "analysis/static/static_analyzer.h"
#include "port/corpus.h"

namespace vespera::analysis {

/** Scorecard knobs. */
struct MigrateOptions
{
    StaticAnalyzerOptions analyzer;
    /// Max per-element relative error the parity check accepts (the
    /// lowering is lane-exact in practice; the tolerance absorbs
    /// reassociated reductions).
    double parityTolerance = 2e-3;
    /// Publish port.* counters to obs::CounterRegistry.
    bool exportCounters = true;
};

/** One corpus kernel's migration outcome. */
struct MigrateEntry
{
    std::string kernel;
    std::string shape;
    /// What migration artifact the kernel exercises (from the corpus).
    std::string notes;

    /// @name Functional parity vs the CUDA reference interpreter.
    /// @{
    bool parity = false;
    double maxRelError = 0;
    /// @}

    /// @name Performance.
    /// @{
    Seconds portedTime = 0;
    /// Static cost model's predicted issue cycles for the trace.
    double portedCycles = 0;
    Seconds handTime = 0;
    /// handTime / portedTime: 1.0 = matches hand-written TPC-C.
    double achievedFraction = 0;
    Seconds a100Time = 0;
    /// portedTime / a100Time (informational; the paper's cross-ISA
    /// comparisons are throughput-normalized, this one is not).
    double slowdownVsA100 = 0;
    /// @}

    /// Full static analysis of the lowered trace (migration-aware
    /// findings included).
    StaticReport analysis;
};

/** Migrate one corpus entry: lower, run, check parity, time, analyze. */
MigrateEntry migrateKernel(const port::CorpusEntry &entry,
                           const MigrateOptions &options = {});

/** Run the whole corpus, in corpus order (deterministic). */
std::vector<MigrateEntry>
runMigrationCorpus(const MigrateOptions &options = {});

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_MIGRATE_SCORECARD_H
