/**
 * @file
 * Rendering of migration scorecards: human-readable text, the
 * "vespera-lint-migrate/v1" JSON schema, and the committed baseline
 * ratchet ("vespera-lint-migrate-baseline/v1") under which functional
 * parity and the achieved fraction of hand-written performance can
 * only improve.
 */

#ifndef VESPERA_ANALYSIS_MIGRATE_MIGRATE_REPORT_H
#define VESPERA_ANALYSIS_MIGRATE_MIGRATE_REPORT_H

#include "analysis/migrate/scorecard.h"
#include "analysis/report.h"
#include "common/json.h"

namespace vespera::analysis {

/** True for the four migration-aware rules (passes_port.cc). */
bool isMigrationRule(const std::string &rule);

/** Full scorecard run as JSON (schema "vespera-lint-migrate/v1"). */
json::Value migrateReportJson(const std::vector<MigrateEntry> &entries);

/** Human-readable scorecard. `verbose` shows every finding even for
 *  kernels at full parity and fraction. */
std::string migrateReportText(const std::vector<MigrateEntry> &entries,
                              bool verbose);

/**
 * Baseline ratchet (schema "vespera-lint-migrate-baseline/v1"): per
 * kernel, parity and achieved fraction. checkMigrateBaseline fails
 * when a baselined kernel loses parity, when a kernel's achieved
 * fraction drops more than `fractionSlack` below its baselined value,
 * or when a kernel absent from the baseline fails parity (new corpus
 * entries must land correct). Improvements pass — regenerate with
 * --update-baseline to ratchet them in.
 */
json::Value migrateBaselineJson(const std::vector<MigrateEntry> &entries);

BaselineCheck
checkMigrateBaseline(const std::vector<MigrateEntry> &entries,
                     const json::Value &baseline,
                     double fractionSlack = 0.02);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_MIGRATE_MIGRATE_REPORT_H
