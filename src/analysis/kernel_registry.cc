#include "analysis/kernel_registry.h"

#include "common/logging.h"
#include "tpc/dispatcher.h"

namespace vespera::analysis {

KernelRegistry &
KernelRegistry::instance()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::add(std::string name, TraceProducer producer)
{
    for (const Entry &e : entries_)
        vassert(e.name != name, "duplicate kernel registration: %s",
                name.c_str());
    entries_.push_back({std::move(name), std::move(producer)});
}

std::vector<std::string>
KernelRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

TracedKernel
KernelRegistry::trace(const std::string &name) const
{
    for (const Entry &e : entries_) {
        if (e.name == name)
            return e.producer();
    }
    vpanic("unknown kernel: %s", name.c_str());
}

std::vector<TracedKernel>
KernelRegistry::traceAll(const std::string &filter) const
{
    std::vector<TracedKernel> out;
    for (const Entry &e : entries_) {
        if (filter.empty() || e.name.find(filter) != std::string::npos)
            out.push_back(e.producer());
    }
    return out;
}

tpc::Program
captureTrace(const std::function<void()> &launch)
{
    tpc::Program best;
    {
        tpc::ScopedTraceObserver observer(
            [&best](const tpc::Program &program, int /*tpc_index*/) {
                if (program.instrs().size() > best.instrs().size())
                    best = program;
            });
        launch();
    }
    vassert(!best.empty(),
            "trace capture recorded no instructions — did the kernel "
            "launch through TpcDispatcher?");
    return best;
}

} // namespace vespera::analysis
