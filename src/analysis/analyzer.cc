#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/logging.h"
#include "obs/counters.h"

namespace vespera::analysis {

namespace {

__attribute__((format(printf, 1, 2))) std::string
strfmt(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

const char *
slotName(tpc::Slot slot)
{
    switch (slot) {
      case tpc::Slot::Load:
        return "load";
      case tpc::Slot::Store:
        return "store";
      case tpc::Slot::Vector:
        return "vector";
      case tpc::Slot::Scalar:
        return "scalar";
    }
    return "?";
}

bool
isGlobalMem(const tpc::Instr &i)
{
    return tpc::isGlobalMemAccess(i);
}

/** Collects per-rule findings, enforcing the per-rule emission cap. */
class Sink
{
  public:
    Sink(Report &report, const AnalyzerOptions &options)
        : report_(report), options_(options)
    {
    }

    void
    add(Diagnostic d)
    {
        RuleSummary &s = report_.rules[d.rule];
        s.count++;
        s.costCycles += d.costCycles;
        s.wastedBytes += d.wastedBytes;
        if (s.count <= options_.maxDiagnosticsPerRule) {
            d.kernel = report_.kernel;
            report_.diagnostics.push_back(std::move(d));
        }
    }

  private:
    Report &report_;
    const AnalyzerOptions &options_;
};

/**
 * SSA well-formedness: every source id was defined by an earlier
 * instruction, no id is defined twice. Returns false (after emitting
 * Error diagnostics) when violated — the pipeline replay indexes its
 * ready-time array by value id and must not run on such traces.
 */
bool
checkSsa(const tpc::Program &program, Sink &sink)
{
    const std::int32_t num_values = program.numValues();
    std::vector<char> defined(static_cast<std::size_t>(num_values), 0);
    bool ok = true;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src < 0)
                continue;
            if (src >= num_values ||
                !defined[static_cast<std::size_t>(src)]) {
                ok = false;
                Diagnostic d;
                d.rule = rules::invalidSsa;
                d.severity = Severity::Error;
                d.instrIndex = static_cast<std::int64_t>(i);
                d.opLabel = program.label(instr.opLabel);
                d.message = strfmt("source value v%d used %s",
                                   static_cast<int>(src),
                                   src >= num_values
                                       ? "but never allocated"
                                       : "before its definition");
                sink.add(std::move(d));
            }
        }
        if (instr.dst >= 0) {
            if (instr.dst >= num_values ||
                defined[static_cast<std::size_t>(instr.dst)]) {
                ok = false;
                Diagnostic d;
                d.rule = rules::invalidSsa;
                d.severity = Severity::Error;
                d.instrIndex = static_cast<std::int64_t>(i);
                d.opLabel = program.label(instr.opLabel);
                d.message = strfmt(
                    "destination value v%d %s (SSA requires fresh ids)",
                    static_cast<int>(instr.dst),
                    instr.dst >= num_values ? "out of range"
                                            : "redefined");
                sink.add(std::move(d));
            } else {
                defined[static_cast<std::size_t>(instr.dst)] = 1;
            }
        }
    }
    return ok;
}

/** Longest def-use chain in cycles (infinite-resource schedule). */
double
criticalPath(const tpc::Program &program, const tpc::TpcParams &params)
{
    std::vector<double> finish(
        static_cast<std::size_t>(program.numValues()), 0.0);
    double longest = 0;
    for (const tpc::Instr &instr : program.instrs()) {
        double start = 0;
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src >= 0)
                start = std::max(start,
                                 finish[static_cast<std::size_t>(src)]);
        }
        const double done =
            start + std::max(tpc::resultLatency(instr, params), 1.0);
        if (instr.dst >= 0)
            finish[static_cast<std::size_t>(instr.dst)] = done;
        longest = std::max(longest, done);
    }
    return longest;
}

/** Rule 1: dependency stalls — chains exposing the latency window. */
void
findExposedLatency(const tpc::Program &program,
                   const tpc::IssueTrace &trace,
                   const std::vector<std::int64_t> &def_index,
                   const AnalyzerOptions &options, Sink &sink)
{
    struct Candidate
    {
        std::size_t index;
        double stall;
        std::int32_t src;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < trace.instrs.size(); i++) {
        const tpc::IssuedInstr &rec = trace.instrs[i];
        if (rec.cause == tpc::StallCause::Dependency &&
            rec.stallCycles >= options.minStallCycles) {
            candidates.push_back({i, rec.stallCycles, rec.criticalSrc});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.stall > b.stall;
              });
    for (const Candidate &c : candidates) {
        const tpc::Instr &instr =
            program.instrs()[static_cast<std::size_t>(c.index)];
        Diagnostic d;
        d.rule = rules::exposedLatency;
        d.severity = Severity::Warning;
        d.instrIndex = static_cast<std::int64_t>(c.index);
        d.opLabel = program.label(instr.opLabel);
        d.costCycles = c.stall;
        std::string producer = "an earlier value";
        if (c.src >= 0 &&
            def_index[static_cast<std::size_t>(c.src)] >= 0) {
            const auto def =
                def_index[static_cast<std::size_t>(c.src)];
            producer = strfmt(
                "v%d (%s @ %lld)", static_cast<int>(c.src),
                program
                    .label(program.instrs()[static_cast<std::size_t>(
                                                def)]
                               .opLabel)
                    .c_str(),
                static_cast<long long>(def));
        }
        d.message = strfmt(
            "issue stalled %.0f cycles waiting on %s; the dependency "
            "chain is shorter than the %d-cycle latency window — "
            "interleave independent work (unroll / more accumulators)",
            c.stall, producer.c_str(), options.params.vectorLatency);
        sink.add(std::move(d));
    }
}

/** Rule 2a: global accesses below the 256 B granule waste bus bytes. */
void
findNarrowAccess(const tpc::Program &program,
                 const AnalyzerOptions &options, Sink &sink)
{
    const Bytes granule = options.params.granule;
    struct Group
    {
        std::int64_t first = -1;
        int count = 0;
        Bytes wasted = 0;
        tpc::Slot slot = tpc::Slot::Load;
    };
    // Group by (label, size): one diagnostic per distinct call site
    // shape rather than one per executed access.
    std::map<std::pair<std::int16_t, Bytes>, Group> groups;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (!isGlobalMem(instr) || instr.memBytes >= granule)
            continue;
        Group &g = groups[{instr.opLabel, instr.memBytes}];
        if (g.first < 0) {
            g.first = static_cast<std::int64_t>(i);
            g.slot = instr.slot;
        }
        g.count++;
        g.wasted += granule - instr.memBytes;
    }
    for (const auto &[key, g] : groups) {
        const Bytes bytes = key.second;
        Diagnostic d;
        d.rule = rules::narrowAccess;
        d.severity = Severity::Warning;
        d.instrIndex = g.first;
        d.opLabel = program.label(key.first);
        d.wastedBytes = g.wasted;
        // Each access still occupies one full-granule bus transaction.
        d.costCycles = g.count * options.params.memIssueIntervalCycles *
                       (1.0 - static_cast<double>(bytes) /
                                  static_cast<double>(granule));
        d.message = strfmt(
            "%d global %s access%s of %llu B each, below the %llu B "
            "granularity: %.0f%% of the bus moved is discarded — widen "
            "the access or batch neighbours",
            g.count, slotName(g.slot), g.count == 1 ? "" : "es",
            static_cast<unsigned long long>(bytes),
            static_cast<unsigned long long>(granule),
            100.0 * (1.0 - static_cast<double>(bytes) /
                               static_cast<double>(granule)));
        sink.add(std::move(d));
    }
}

/** Rule 2b: Random-tagged streams whose addresses are sequential. */
void
findRandomShouldStream(const tpc::Program &program,
                       const AnalyzerOptions &options, Sink &sink)
{
    struct Run
    {
        std::int64_t first = -1;
        int length = 0;
    };
    struct StreamState
    {
        std::int64_t nextOffset = -1;
        Run current;
        Run best;
        int sequential = 0; ///< Total sequential accesses (all runs).
    };
    std::map<std::uint32_t, StreamState> streams;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (!isGlobalMem(instr) ||
            instr.access != tpc::Access::Random ||
            instr.memOffset < 0 || instr.memStream == 0) {
            continue;
        }
        StreamState &st = streams[instr.memStream];
        if (st.nextOffset == instr.memOffset && st.current.length > 0) {
            st.current.length++;
            st.sequential++;
        } else {
            if (st.current.length > st.best.length)
                st.best = st.current;
            st.current = {static_cast<std::int64_t>(i), 1};
        }
        st.nextOffset =
            instr.memOffset + static_cast<std::int64_t>(instr.memBytes);
    }
    for (auto &[id, st] : streams) {
        if (st.current.length > st.best.length)
            st.best = st.current;
        if (st.best.length < options.minSequentialRun)
            continue;
        const tpc::Instr &first = program.instrs()[static_cast<
            std::size_t>(st.best.first)];
        Diagnostic d;
        d.rule = rules::randomShouldStream;
        d.severity = Severity::Warning;
        d.instrIndex = st.best.first;
        d.opLabel = program.label(first.opLabel);
        d.costCycles =
            static_cast<double>(st.best.length) *
            (options.params.loadLatencyRandom -
             options.params.loadLatencyStream);
        d.message = strfmt(
            "%d Random-tagged accesses on stream #%u walk sequential "
            "addresses (longest run %d); tagging them Stream enables "
            "prefetch, saving up to %d cycles of latency per access",
            st.sequential + 1, id, st.best.length,
            options.params.loadLatencyRandom -
                options.params.loadLatencyStream);
        sink.add(std::move(d));
    }
}

/** Rule 3: VLIW slot-pressure imbalance / ILP starvation. */
void
findSlotImbalance(const Report &report, const AnalyzerOptions &options,
                  Sink &sink)
{
    // Occupancy and stall fractions are meaningless on empty or
    // single-instruction traces (a lone store "stalls" for its whole
    // drain), and report.cycles would be a degenerate denominator —
    // bail before the divide.
    if (report.cycles <= 0 || report.instructions < 2)
        return;
    (void)options;
    double best_occ = 0;
    int best_slot = 0;
    for (int s = 0; s < tpc::numSlots; s++) {
        const double occ =
            static_cast<double>(
                report.slotCounts[static_cast<std::size_t>(s)]) /
            report.cycles;
        if (occ > best_occ) {
            best_occ = occ;
            best_slot = s;
        }
    }
    const double stall_frac =
        report.measuredStallCycles / report.cycles;

    if (best_occ > 0.85) {
        // One slot is the bottleneck; name the idle ones.
        std::string idle;
        for (int s = 0; s < tpc::numSlots; s++) {
            const double occ =
                static_cast<double>(
                    report.slotCounts[static_cast<std::size_t>(s)]) /
                report.cycles;
            if (s != best_slot && occ < 0.25 * best_occ) {
                if (!idle.empty())
                    idle += ", ";
                idle += slotName(static_cast<tpc::Slot>(s));
            }
        }
        if (!idle.empty()) {
            Diagnostic d;
            d.rule = rules::slotImbalance;
            d.severity = Severity::Info;
            d.message = strfmt(
                "%s slot is saturated (%.0f%% occupancy) while %s "
                "slot%s idle%s — move work across slots or accept the "
                "%s-bound roofline",
                slotName(static_cast<tpc::Slot>(best_slot)),
                100.0 * best_occ, idle.c_str(),
                idle.find(',') == std::string::npos ? " is" : "s are",
                "", slotName(static_cast<tpc::Slot>(best_slot)));
            sink.add(std::move(d));
        }
    } else if (stall_frac > 0.3 && best_occ < 0.5) {
        Diagnostic d;
        d.rule = rules::slotImbalance;
        d.severity = Severity::Warning;
        d.costCycles = report.measuredStallCycles;
        d.message = strfmt(
            "no VLIW slot exceeds %.0f%% occupancy while %.0f%% of "
            "cycles stall: the loop body exposes too little ILP — "
            "unroll deeper or add independent accumulator chains",
            100.0 * best_occ, 100.0 * stall_frac);
        sink.add(std::move(d));
    }
}

/** Rule 4a: SSA values produced but never consumed. */
void
findDeadValues(const tpc::Program &program, Sink &sink)
{
    std::vector<char> used(
        static_cast<std::size_t>(program.numValues()), 0);
    for (const tpc::Instr &instr : program.instrs()) {
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src >= 0)
                used[static_cast<std::size_t>(src)] = 1;
        }
    }
    struct Group
    {
        std::int64_t first = -1;
        int count = 0;
        bool isLoad = false;
    };
    std::map<std::int16_t, Group> groups;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.dst < 0 || used[static_cast<std::size_t>(instr.dst)])
            continue;
        Group &g = groups[instr.opLabel];
        if (g.first < 0) {
            g.first = static_cast<std::int64_t>(i);
            g.isLoad = instr.slot == tpc::Slot::Load ||
                       (instr.slot == tpc::Slot::Scalar &&
                        instr.memBytes > 0);
        }
        g.count++;
    }
    for (const auto &[label, g] : groups) {
        Diagnostic d;
        d.rule = rules::deadValue;
        // Unused loads are often intentional prefetch staging; unused
        // compute is pure waste.
        d.severity = g.isLoad ? Severity::Info : Severity::Warning;
        d.instrIndex = g.first;
        d.opLabel = program.label(label);
        d.message = strfmt(
            "%d %s result%s never consumed%s", g.count,
            program.label(label).empty() ? "instruction"
                                         : program.label(label).c_str(),
            g.count == 1 ? "" : "s",
            g.isLoad ? " (prefetch staging, or a wasted load)"
                     : " — dead compute occupies a VLIW slot for "
                       "nothing");
        sink.add(std::move(d));
    }
}

/** Rule 4b: global loads that re-read bytes already loaded. */
void
findRedundantReloads(const tpc::Program &program,
                     const AnalyzerOptions &options, Sink &sink)
{
    struct StreamState
    {
        std::map<std::pair<std::int64_t, Bytes>, int> loads;
        Bytes uniqueBytes = 0;
        Bytes reloadedBytes = 0;
        int reloads = 0;
        std::int64_t firstReload = -1;
        std::int16_t label = -1;
    };
    std::map<std::uint32_t, StreamState> streams;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.slot != tpc::Slot::Load || !isGlobalMem(instr) ||
            instr.memOffset < 0 || instr.memStream == 0) {
            continue;
        }
        StreamState &st = streams[instr.memStream];
        int &count = st.loads[{instr.memOffset, instr.memBytes}];
        if (count == 0) {
            st.uniqueBytes += instr.memBytes;
        } else {
            st.reloadedBytes += instr.memBytes;
            st.reloads++;
            if (st.firstReload < 0) {
                st.firstReload = static_cast<std::int64_t>(i);
                st.label = instr.opLabel;
            }
        }
        count++;
    }
    for (const auto &[id, st] : streams) {
        if (st.reloads == 0)
            continue;
        const bool fits = st.uniqueBytes <= options.localMemoryBytes;
        Diagnostic d;
        d.rule = rules::redundantReload;
        d.severity = fits ? Severity::Warning : Severity::Info;
        d.instrIndex = st.firstReload;
        d.opLabel = program.label(st.label);
        d.wastedBytes = st.reloadedBytes;
        d.costCycles =
            static_cast<double>((st.reloadedBytes +
                                 options.params.granule - 1) /
                                options.params.granule) *
            options.params.memIssueIntervalCycles;
        d.message = strfmt(
            "%d loads re-read %llu B already loaded from stream #%u "
            "(unique working set %llu B %s the %llu B local memory) — "
            "%s",
            st.reloads,
            static_cast<unsigned long long>(st.reloadedBytes), id,
            static_cast<unsigned long long>(st.uniqueBytes),
            fits ? "fits in" : "exceeds",
            static_cast<unsigned long long>(options.localMemoryBytes),
            fits ? "stage it once in local memory"
                 : "tile the working set through local memory");
        sink.add(std::move(d));
    }
}

/** Rule 5: local-memory working set vs capacity. */
void
findLocalOverflow(const tpc::Program &program, Report &report,
                  const AnalyzerOptions &options, Sink &sink)
{
    Bytes high_water = 0;
    std::int64_t worst = -1;
    std::int16_t label = -1;
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.access != tpc::Access::Local || instr.memOffset < 0)
            continue;
        const Bytes end =
            static_cast<Bytes>(instr.memOffset) + instr.memBytes;
        if (end > high_water) {
            high_water = end;
            worst = static_cast<std::int64_t>(i);
            label = instr.opLabel;
        }
    }
    report.localBytesUsed = high_water;
    if (high_water == 0)
        return;
    const double frac = static_cast<double>(high_water) /
                        static_cast<double>(options.localMemoryBytes);
    if (frac <= 0.9)
        return;
    Diagnostic d;
    d.rule = rules::localOverflow;
    d.severity = frac > 1.0 ? Severity::Error : Severity::Warning;
    d.instrIndex = worst;
    d.opLabel = program.label(label);
    d.wastedBytes = high_water > options.localMemoryBytes
                        ? high_water - options.localMemoryBytes
                        : 0;
    d.message = strfmt(
        "local-memory working set %llu B %s the %llu B capacity "
        "(%.0f%%) — %s",
        static_cast<unsigned long long>(high_water),
        frac > 1.0 ? "exceeds" : "approaches",
        static_cast<unsigned long long>(options.localMemoryBytes),
        100.0 * frac,
        frac > 1.0 ? "the kernel would fault on hardware; tile the "
                     "staging buffer"
                   : "leave headroom or spills will follow the next "
                     "shape bump");
    sink.add(std::move(d));
}

/** Publish per-rule totals into the process-wide counter registry. */
void
exportRuleCounters(const Report &report, const AnalyzerOptions &options)
{
    if (!options.exportCounters)
        return;
    obs::CounterRegistry &reg = obs::CounterRegistry::instance();
    reg.counter("analysis.programs").add(1.0);
    for (const auto &[rule, summary] : report.rules) {
        reg.counter(std::string("analysis.diag.") + rule)
            .add(summary.count);
    }
}

} // namespace

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

bool
Report::hasSeverity(Severity s) const
{
    for (const Diagnostic &d : diagnostics) {
        if (d.severity >= s)
            return true;
    }
    return false;
}

int
Report::countFor(const std::string &rule) const
{
    auto it = rules.find(rule);
    return it == rules.end() ? 0 : it->second.count;
}

Report
analyzeProgram(const tpc::Program &program,
               const AnalyzerOptions &options)
{
    Report report;
    report.kernel = program.kernelName();
    report.instructions = program.instrs().size();
    Sink sink(report, options);

    // Def-use indices (value id -> defining instruction).
    std::vector<std::int64_t> def_index(
        static_cast<std::size_t>(program.numValues()), -1);
    for (std::size_t i = 0; i < program.instrs().size(); i++) {
        const tpc::Instr &instr = program.instrs()[i];
        if (instr.dst >= 0 && instr.dst < program.numValues() &&
            def_index[static_cast<std::size_t>(instr.dst)] < 0) {
            def_index[static_cast<std::size_t>(instr.dst)] =
                static_cast<std::int64_t>(i);
        }
        report.slotCounts[static_cast<std::size_t>(instr.slot)]++;
    }

    // A malformed trace cannot be replayed; report and bail.
    if (!checkSsa(program, sink)) {
        exportRuleCounters(report, options);
        return report;
    }

    if (!program.empty()) {
        tpc::IssueTrace trace;
        const tpc::PipelineResult pr =
            tpc::evaluatePipeline(program, options.params, &trace);
        report.cycles = pr.cycles;
        report.measuredStallCycles = pr.stallCycles;
        for (const tpc::IssuedInstr &rec : trace.instrs) {
            switch (rec.cause) {
              case tpc::StallCause::Dependency:
                report.dependencyStallCycles += rec.stallCycles;
                break;
              case tpc::StallCause::Memory:
                report.memoryStallCycles += rec.stallCycles;
                break;
              case tpc::StallCause::SlotBusy:
                report.slotStallCycles += rec.stallCycles;
                break;
              case tpc::StallCause::None:
                break;
            }
        }
        report.drainStallCycles = trace.drainStall;
        report.predictedStallCycles =
            report.dependencyStallCycles + report.memoryStallCycles +
            report.slotStallCycles + report.drainStallCycles;
        report.criticalPathCycles = criticalPath(program, options.params);

        findExposedLatency(program, trace, def_index, options, sink);
    }

    findNarrowAccess(program, options, sink);
    findRandomShouldStream(program, options, sink);
    findSlotImbalance(report, options, sink);
    findDeadValues(program, sink);
    findRedundantReloads(program, options, sink);
    findLocalOverflow(program, report, options, sink);

    exportRuleCounters(report, options);
    return report;
}

} // namespace vespera::analysis
