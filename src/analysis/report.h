/**
 * @file
 * Rendering of analyzer results: human-readable text, machine-readable
 * JSON (schema "vespera-lint/v1"), and the warnings baseline that lets
 * CI gate on *new* findings without first driving the existing kernel
 * set to zero warnings.
 */

#ifndef VESPERA_ANALYSIS_REPORT_H
#define VESPERA_ANALYSIS_REPORT_H

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/json.h"

namespace vespera::analysis {

/** One analyzed trace in a lint run (kernel x shape). */
struct LintEntry
{
    /// Registry kernel name (or graph name for graph-level lints).
    std::string kernel;
    /// Human-readable shape tag ("rows=48 cols=1024"); may be "".
    std::string shape;
    Report report;
};

/** Full lint run as JSON (schema "vespera-lint/v1"). */
json::Value lintReportJson(const std::vector<LintEntry> &entries);

/** Human-readable report. `verbose` includes per-trace stats even for
 *  clean traces; otherwise clean traces get one summary line. */
std::string lintReportText(const std::vector<LintEntry> &entries,
                           bool verbose);

/**
 * Warnings baseline (schema "vespera-lint-baseline/v1"): for each
 * kernel, the number of Warning-severity findings per rule, aggregated
 * across shapes. Errors are never baselined — they always fail.
 */
json::Value baselineJson(const std::vector<LintEntry> &entries);

/** Outcome of comparing a run against a checked-in baseline. */
struct BaselineCheck
{
    bool ok = true;
    /// One line per violation (new error, warning count regression).
    std::vector<std::string> failures;
};

/**
 * Compare a run against `baseline` (a parsed baselineJson document).
 * Fails on any Error-severity finding, and on any (kernel, rule) whose
 * Warning count exceeds the baselined count (absent kernels or rules
 * baseline at zero). Improvements (fewer warnings) pass, so the
 * baseline can be ratcheted down by regenerating it.
 */
BaselineCheck checkAgainstBaseline(const std::vector<LintEntry> &entries,
                                   const json::Value &baseline);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_REPORT_H
