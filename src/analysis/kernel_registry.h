/**
 * @file
 * Registry of traceable kernels for the lint sweep.
 *
 * Each registered entry is a producer callable that runs one of the
 * repo's TPC kernels at a representative shape while a
 * tpc::ScopedTraceObserver captures the recorded Program. vespera-lint
 * iterates the registry, analyzes every captured trace, and emits the
 * report; tests use the same registry so the lint corpus and the test
 * corpus cannot drift apart.
 *
 * Registration is explicit (registerBuiltinKernels) rather than via
 * static initializers: the analysis library is static, and an
 * unreferenced registration TU would be dropped by the linker.
 */

#ifndef VESPERA_ANALYSIS_KERNEL_REGISTRY_H
#define VESPERA_ANALYSIS_KERNEL_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "tpc/program.h"

namespace vespera::analysis {

/** One captured kernel trace at one shape. */
struct TracedKernel
{
    /// Registry entry name ("softmax/1024").
    std::string name;
    /// Human-readable shape tag ("rows=48 cols=1024").
    std::string shape;
    /// The largest per-TPC Program the launch recorded (TPC 0's slice
    /// unless a later TPC traced more instructions).
    tpc::Program program;
};

/**
 * Runs a kernel under trace capture and returns the result. Producers
 * must be deterministic (fixed seeds) so the lint baseline is stable.
 */
using TraceProducer = std::function<TracedKernel()>;

/** Name -> producer registry. Not thread-safe (CLI/test use only). */
class KernelRegistry
{
  public:
    static KernelRegistry &instance();

    KernelRegistry() = default;
    KernelRegistry(const KernelRegistry &) = delete;
    KernelRegistry &operator=(const KernelRegistry &) = delete;

    /** Register a producer under `name` (must be unique). */
    void add(std::string name, TraceProducer producer);

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Run one producer by exact name. Panics on unknown names. */
    TracedKernel trace(const std::string &name) const;

    /** Run every producer whose name contains `filter` ("" = all). */
    std::vector<TracedKernel> traceAll(const std::string &filter = "") const;

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::string name;
        TraceProducer producer;
    };
    std::vector<Entry> entries_;
};

/**
 * Run `launch` (any code path that ends in TpcDispatcher::launch) under
 * a scoped trace observer and return the largest captured Program.
 */
tpc::Program captureTrace(const std::function<void()> &launch);

/**
 * Populate KernelRegistry::instance() with the repo's built-in kernels
 * (softmax, layernorm/rmsnorm, STREAM variants, gather/scatter,
 * embedding reductions) at fixed shapes. Idempotent.
 */
void registerBuiltinKernels();

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_KERNEL_REGISTRY_H
