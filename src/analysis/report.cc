#include "analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace vespera::analysis {

namespace {

json::Value
num(double v)
{
    return json::Value::makeNumber(v);
}

json::Value
str(std::string s)
{
    return json::Value::makeString(std::move(s));
}

json::Value
diagnosticJson(const Diagnostic &d)
{
    std::map<std::string, json::Value> m;
    m["rule"] = str(d.rule);
    m["severity"] = str(severityName(d.severity));
    m["kernel"] = str(d.kernel);
    m["instr"] = num(static_cast<double>(d.instrIndex));
    m["op"] = str(d.opLabel);
    m["message"] = str(d.message);
    m["cost_cycles"] = num(d.costCycles);
    m["wasted_bytes"] = num(static_cast<double>(d.wastedBytes));
    return json::Value::makeObject(std::move(m));
}

json::Value
reportJson(const Report &r)
{
    std::map<std::string, json::Value> m;
    m["instructions"] = num(static_cast<double>(r.instructions));
    m["cycles"] = num(r.cycles);
    m["stall_cycles"] = num(r.measuredStallCycles);
    m["predicted_stall_cycles"] = num(r.predictedStallCycles);
    m["dependency_stall_cycles"] = num(r.dependencyStallCycles);
    m["memory_stall_cycles"] = num(r.memoryStallCycles);
    m["slot_stall_cycles"] = num(r.slotStallCycles);
    m["drain_stall_cycles"] = num(r.drainStallCycles);
    m["critical_path_cycles"] = num(r.criticalPathCycles);
    m["local_bytes_used"] = num(static_cast<double>(r.localBytesUsed));
    {
        std::map<std::string, json::Value> slots;
        static const char *const names[tpc::numSlots] = {
            "load", "store", "vector", "scalar"};
        for (int s = 0; s < tpc::numSlots; s++) {
            slots[names[s]] = num(static_cast<double>(
                r.slotCounts[static_cast<std::size_t>(s)]));
        }
        m["slot_counts"] = json::Value::makeObject(std::move(slots));
    }
    {
        std::map<std::string, json::Value> rules;
        for (const auto &[rule, summary] : r.rules) {
            std::map<std::string, json::Value> s;
            s["count"] = num(summary.count);
            s["cost_cycles"] = num(summary.costCycles);
            s["wasted_bytes"] =
                num(static_cast<double>(summary.wastedBytes));
            rules[rule] = json::Value::makeObject(std::move(s));
        }
        m["rules"] = json::Value::makeObject(std::move(rules));
    }
    {
        std::vector<json::Value> diags;
        diags.reserve(r.diagnostics.size());
        for (const Diagnostic &d : r.diagnostics)
            diags.push_back(diagnosticJson(d));
        m["diagnostics"] = json::Value::makeArray(std::move(diags));
    }
    return json::Value::makeObject(std::move(m));
}

/** Count diagnostics at exactly `sev` across a whole run. */
int
countSeverity(const std::vector<LintEntry> &entries, Severity sev)
{
    int n = 0;
    for (const LintEntry &e : entries) {
        for (const Diagnostic &d : e.report.diagnostics) {
            if (d.severity == sev)
                n++;
        }
    }
    return n;
}

} // namespace

json::Value
lintReportJson(const std::vector<LintEntry> &entries)
{
    std::map<std::string, json::Value> root;
    root["schema"] = str("vespera-lint/v1");
    std::vector<json::Value> traces;
    traces.reserve(entries.size());
    for (const LintEntry &e : entries) {
        std::map<std::string, json::Value> m;
        m["kernel"] = str(e.kernel);
        m["shape"] = str(e.shape);
        m["report"] = reportJson(e.report);
        traces.push_back(json::Value::makeObject(std::move(m)));
    }
    root["traces"] = json::Value::makeArray(std::move(traces));
    {
        std::map<std::string, json::Value> totals;
        totals["errors"] =
            num(countSeverity(entries, Severity::Error));
        totals["warnings"] =
            num(countSeverity(entries, Severity::Warning));
        totals["infos"] = num(countSeverity(entries, Severity::Info));
        root["totals"] = json::Value::makeObject(std::move(totals));
    }
    return json::Value::makeObject(std::move(root));
}

std::string
lintReportText(const std::vector<LintEntry> &entries, bool verbose)
{
    std::ostringstream os;
    for (const LintEntry &e : entries) {
        const Report &r = e.report;
        const bool clean = r.diagnostics.empty();
        if (clean && !verbose) {
            os << "  OK  " << e.kernel;
            if (!e.shape.empty())
                os << " [" << e.shape << "]";
            os << "\n";
            continue;
        }
        os << "==== " << e.kernel;
        if (!e.shape.empty())
            os << " [" << e.shape << "]";
        os << " ====\n";
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %llu instrs, %.0f cycles (%.0f stalled: "
                      "dep %.0f, mem %.0f, slot %.0f, drain %.0f), "
                      "critical path %.0f\n",
                      static_cast<unsigned long long>(r.instructions),
                      r.cycles, r.measuredStallCycles,
                      r.dependencyStallCycles, r.memoryStallCycles,
                      r.slotStallCycles, r.drainStallCycles,
                      r.criticalPathCycles);
        os << line;
        for (const Diagnostic &d : r.diagnostics) {
            os << "  " << severityName(d.severity) << ": [" << d.rule
               << "]";
            if (d.instrIndex >= 0)
                os << " @" << d.instrIndex;
            if (!d.opLabel.empty())
                os << " (" << d.opLabel << ")";
            os << " " << d.message;
            if (d.costCycles > 0) {
                std::snprintf(line, sizeof(line), " [~%.0f cycles]",
                              d.costCycles);
                os << line;
            }
            if (d.wastedBytes > 0)
                os << " [" << d.wastedBytes << " B wasted]";
            os << "\n";
        }
        // Rules that overflowed the per-rule emission cap.
        for (const auto &[rule, summary] : r.rules) {
            const int shown = static_cast<int>(std::count_if(
                r.diagnostics.begin(), r.diagnostics.end(),
                [&rule = rule](const Diagnostic &d) {
                    return d.rule == rule;
                }));
            if (summary.count > shown) {
                os << "  ... [" << rule << "] "
                   << summary.count - shown << " more finding"
                   << (summary.count - shown == 1 ? "" : "s")
                   << " suppressed\n";
            }
        }
    }
    char totals[128];
    std::snprintf(totals, sizeof(totals),
                  "%zu traces: %d errors, %d warnings, %d infos\n",
                  entries.size(),
                  countSeverity(entries, Severity::Error),
                  countSeverity(entries, Severity::Warning),
                  countSeverity(entries, Severity::Info));
    os << totals;
    return os.str();
}

json::Value
baselineJson(const std::vector<LintEntry> &entries)
{
    // kernel -> rule -> warning count, aggregated across shapes.
    std::map<std::string, std::map<std::string, int>> counts;
    for (const LintEntry &e : entries) {
        for (const Diagnostic &d : e.report.diagnostics) {
            if (d.severity == Severity::Warning)
                counts[e.kernel][d.rule]++;
        }
    }
    std::map<std::string, json::Value> kernels;
    for (const auto &[kernel, rules] : counts) {
        std::map<std::string, json::Value> m;
        for (const auto &[rule, count] : rules)
            m[rule] = json::Value::makeNumber(count);
        kernels[kernel] = json::Value::makeObject(std::move(m));
    }
    std::map<std::string, json::Value> root;
    root["schema"] = json::Value::makeString("vespera-lint-baseline/v1");
    root["warnings"] = json::Value::makeObject(std::move(kernels));
    return json::Value::makeObject(std::move(root));
}

BaselineCheck
checkAgainstBaseline(const std::vector<LintEntry> &entries,
                     const json::Value &baseline)
{
    BaselineCheck check;
    const json::Value *allowed = baseline.find("warnings");

    // Errors are never baselined.
    for (const LintEntry &e : entries) {
        for (const Diagnostic &d : e.report.diagnostics) {
            if (d.severity == Severity::Error) {
                check.ok = false;
                check.failures.push_back(
                    "error-severity finding in " + e.kernel + ": [" +
                    d.rule + "] " + d.message);
            }
        }
    }

    // Warning counts may not regress past the baseline.
    std::map<std::string, std::map<std::string, int>> counts;
    for (const LintEntry &e : entries) {
        for (const Diagnostic &d : e.report.diagnostics) {
            if (d.severity == Severity::Warning)
                counts[e.kernel][d.rule]++;
        }
    }
    for (const auto &[kernel, rules] : counts) {
        const json::Value *base =
            allowed != nullptr ? allowed->find(kernel) : nullptr;
        for (const auto &[rule, count] : rules) {
            int budget = 0;
            if (base != nullptr) {
                const json::Value *v = base->find(rule);
                if (v != nullptr && v->isNumber())
                    budget = static_cast<int>(v->number());
            }
            if (count > budget) {
                check.ok = false;
                check.failures.push_back(
                    kernel + ": [" + rule + "] " +
                    std::to_string(count) + " warnings exceed the " +
                    std::to_string(budget) + " baselined");
            }
        }
    }
    return check;
}

} // namespace vespera::analysis
