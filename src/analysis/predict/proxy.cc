#include "analysis/predict/proxy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vespera::analysis {

/// The embedded copy of tools/predict_coeffs.json (coeffs_builtin.cc).
extern const char *kBuiltinProxyCoeffsJson;

double
ProxyModel::predictBasis(const std::string &family,
                         const std::vector<double> &basis) const
{
    auto it = families_.find(family);
    if (it == families_.end())
        it = families_.find("default");
    vassert(it != families_.end(),
            "ProxyModel has no family '%s' and no default",
            family.c_str());
    const std::vector<double> &w = it->second;
    vassert(w.size() == basis.size(),
            "ProxyModel family '%s': %zu weights vs %zu basis terms "
            "(stale coefficient artifact?)",
            it->first.c_str(), w.size(), basis.size());
    double cycles = 0;
    for (std::size_t i = 0; i < w.size(); i++)
        cycles += w[i] * basis[i];
    return std::max(1.0, cycles);
}

double
ProxyModel::predict(const FeatureVector &f) const
{
    return predictBasis(f.kernel, f.basis());
}

void
ProxyModel::setFamily(const std::string &family,
                      std::vector<double> weights)
{
    vassert(weights.size() == FeatureVector::basisNames().size(),
            "weight vector does not match the feature basis");
    families_[family] = std::move(weights);
}

json::Value
ProxyModel::toJson() const
{
    std::map<std::string, json::Value> fams;
    for (const auto &[name, weights] : families_) {
        std::vector<json::Value> w;
        w.reserve(weights.size());
        for (double v : weights)
            w.push_back(json::Value::makeNumber(v));
        fams[name] = json::Value::makeArray(std::move(w));
    }
    std::vector<json::Value> basis;
    for (const std::string &n : FeatureVector::basisNames())
        basis.push_back(json::Value::makeString(n));
    std::map<std::string, json::Value> doc;
    doc["schema"] = json::Value::makeString(kProxyCoeffsSchema);
    doc["basis"] = json::Value::makeArray(std::move(basis));
    doc["families"] = json::Value::makeObject(std::move(fams));
    return json::Value::makeObject(std::move(doc));
}

bool
ProxyModel::fromJson(const json::Value &doc, ProxyModel &out,
                     std::string *error)
{
    auto fail = [error](const char *msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    const json::Value *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->str() != kProxyCoeffsSchema) {
        return fail("not a vespera-predict-coeffs/v1 document");
    }
    const json::Value *basis = doc.find("basis");
    const std::vector<std::string> &names = FeatureVector::basisNames();
    if (basis == nullptr || !basis->isArray() ||
        basis->array().size() != names.size()) {
        return fail("basis list does not match this build's feature "
                    "basis");
    }
    for (std::size_t i = 0; i < names.size(); i++) {
        if (!basis->array()[i].isString() ||
            basis->array()[i].str() != names[i]) {
            return fail("basis name mismatch (artifact fitted against "
                        "a different feature schema)");
        }
    }
    const json::Value *fams = doc.find("families");
    if (fams == nullptr || !fams->isObject() || fams->object().empty())
        return fail("missing families");
    out.families_.clear();
    for (const auto &[name, arr] : fams->object()) {
        if (!arr.isArray() || arr.array().size() != names.size())
            return fail("family weight vector has wrong length");
        std::vector<double> w;
        w.reserve(names.size());
        for (const json::Value &v : arr.array()) {
            if (!v.isNumber())
                return fail("non-numeric weight");
            w.push_back(v.number());
        }
        out.families_[name] = std::move(w);
    }
    if (out.families_.count("default") == 0)
        return fail("missing 'default' family");
    return true;
}

const ProxyModel &
ProxyModel::builtin()
{
    static const ProxyModel model = [] {
        json::Value doc;
        std::string error;
        vassert(json::parse(kBuiltinProxyCoeffsJson, doc, &error),
                "builtin proxy coefficients do not parse: %s",
                error.c_str());
        ProxyModel m;
        vassert(ProxyModel::fromJson(doc, m, &error),
                "builtin proxy coefficients rejected: %s",
                error.c_str());
        return m;
    }();
    return model;
}

namespace {

/**
 * Solve A x = b (n x n, symmetric positive-definite after the ridge
 * term) by Gaussian elimination with partial pivoting. Deterministic;
 * panics on a numerically singular system (the ridge term prevents
 * that for any real calibration set).
 */
std::vector<double>
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; col++) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; r++) {
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        }
        vassert(std::fabs(a[pivot][col]) > 1e-12,
                "singular normal equations despite ridge term");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t r = col + 1; r < n; r++) {
            const double factor = a[r][col] / a[col][col];
            if (factor == 0)
                continue;
            for (std::size_t c = col; c < n; c++)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0);
    for (std::size_t i = n; i-- > 0;) {
        double v = b[i];
        for (std::size_t c = i + 1; c < n; c++)
            v -= a[i][c] * x[c];
        x[i] = v / a[i][i];
    }
    return x;
}

/** Ridge fit of one family's samples in column-scaled space. */
std::vector<double>
fitFamily(const std::vector<const CalibrationSample *> &samples,
          double ridgeLambda)
{
    const std::size_t dims = FeatureVector::basisNames().size();
    // Each row is weighted by 1 / exactCycles so the solver minimizes
    // *relative* residuals — the accuracy contract is ±15% relative,
    // and unweighted least squares would chase the largest shapes
    // while letting small-cycle samples miss by 2x. Column scales are
    // taken over the *weighted* rows: features span counts (~1e0) to
    // cycle totals (~1e6), and scaling after weighting keeps the Gram
    // diagonal near the sample count so the relative ridge term stays
    // meaningful.
    std::vector<double> scale(dims, 0);
    for (const CalibrationSample *s : samples) {
        vassert(s->basis.size() == dims,
                "calibration sample basis length mismatch");
        const double rw =
            std::sqrt(s->weight) / std::max(1.0, s->exactCycles);
        for (std::size_t j = 0; j < dims; j++)
            scale[j] = std::max(scale[j], std::fabs(rw * s->basis[j]));
    }
    for (double &v : scale) {
        if (v == 0)
            v = 1; // Dead column; weight stays 0 via the ridge.
    }
    // Normal equations in scaled space: (X'X + lambda I) w = X'y.
    std::vector<std::vector<double>> gram(
        dims, std::vector<double>(dims, 0));
    std::vector<double> rhs(dims, 0);
    for (const CalibrationSample *s : samples) {
        const double rw =
            std::sqrt(s->weight) / std::max(1.0, s->exactCycles);
        for (std::size_t j = 0; j < dims; j++) {
            const double xj = rw * s->basis[j] / scale[j];
            rhs[j] += xj * rw * s->exactCycles;
            for (std::size_t k = 0; k < dims; k++)
                gram[j][k] += xj * rw * s->basis[k] / scale[k];
        }
    }
    // Relative ridge: lambda scales with the mean Gram diagonal so the
    // regularization strength is invariant to sample count.
    double diag = 0;
    for (std::size_t j = 0; j < dims; j++)
        diag += gram[j][j];
    const double lambda =
        ridgeLambda * std::max(1.0, diag / static_cast<double>(dims));
    for (std::size_t j = 0; j < dims; j++)
        gram[j][j] += lambda;
    std::vector<double> w = solveLinear(std::move(gram), std::move(rhs));
    // Fold the column scaling back into the weights.
    for (std::size_t j = 0; j < dims; j++)
        w[j] /= scale[j];
    return w;
}

} // namespace

ProxyModel
fitProxyModel(const std::vector<CalibrationSample> &samples,
              double ridgeLambda)
{
    vassert(!samples.empty(), "no calibration samples");
    std::map<std::string, std::vector<const CalibrationSample *>> byFam;
    std::vector<const CalibrationSample *> all;
    for (const CalibrationSample &s : samples) {
        byFam[s.family].push_back(&s);
        all.push_back(&s);
    }
    ProxyModel model;
    for (const auto &[family, fam] : byFam)
        model.setFamily(family, fitFamily(fam, ridgeLambda));
    model.setFamily("default", fitFamily(all, ridgeLambda));
    return model;
}

} // namespace vespera::analysis
