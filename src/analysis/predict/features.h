/**
 * @file
 * Feature extraction over the lifted SSA IR (analysis/static/ir.h):
 * the front half of the fast-path cost predictor.
 *
 * The static cost model (cost_model.h) predicts cycles by scheduling
 * every IR instruction under the TPC's issue rules — exact, but linear
 * in trace length and requiring a recorded trace per candidate. The
 * predictor instead summarizes a kernel x shape into a fixed-length
 * numeric feature vector — slot mix, access-granularity histogram,
 * stride classes, loop trip counts, initiation-interval gaps, register
 * pressure peaks — and prices it with per-feature linear coefficients
 * (proxy.h). The NeuroScalar-style division of labor: features + dot
 * product screen thousands of configurations per second, and the exact
 * static scheduler verifies only the survivors (tuner.h).
 *
 * Extraction never runs the scheduler: every feature is a single pass
 * over the instruction stream and the recovered loop structure.
 */

#ifndef VESPERA_ANALYSIS_PREDICT_FEATURES_H
#define VESPERA_ANALYSIS_PREDICT_FEATURES_H

#include <string>
#include <vector>

#include "analysis/static/ir.h"
#include "common/json.h"
#include "tpc/isa.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {

/// Serialized feature-vector schema tag.
inline constexpr const char *kFeatureSchema =
    "vespera-predict-features/v1";

/// Access-size histogram buckets: payload <= 32, 64, 128, 256, 512,
/// 1024, 2048 B, and everything larger.
inline constexpr int kGranularityBuckets = 8;

/**
 * The feature vector of one kernel x shape. All fields are counts or
 * cycle-dimensioned aggregates over the *full unrolled* trace, so they
 * scale with problem size the way issue cycles do.
 */
struct FeatureVector
{
    std::string kernel; ///< Program::kernelName (may be "").
    std::string shape;  ///< Caller-supplied shape tag (may be "").

    /// @name Instruction mix.
    /// @{
    double instructions = 0;
    double slotCounts[tpc::numSlots] = {0, 0, 0, 0};
    /// Busiest single slot — the VLIW resource bound in cycles.
    double busiestSlotCount = 0;
    /// @}

    /// @name Global-memory interface.
    /// @{
    double globalAccesses = 0;
    double globalPayloadBytes = 0;
    /// Granule transactions (payload rounded up per access).
    double granuleTxns = 0;
    /// granuleTxns x memIssueIntervalCycles — the memory roofline.
    double memBoundCycles = 0;
    /// Interface cycles spent moving padding, not payload: the
    /// piecewise "granularity knee" — zero at/above the 256 B granule,
    /// growing linearly as accesses narrow below it.
    double granuleWasteCycles = 0;
    /// Second knee at granule/2: accesses so narrow that even pairwise
    /// coalescing could not fill a granule.
    double hingeHalfGranule = 0;
    double granularityHist[kGranularityBuckets] = {0};
    /// Accesses with payload < granule.
    double subGranuleAccesses = 0;
    /// @}

    /// @name Stride classes (innermost-loop accesses, trip-weighted).
    /// @{
    double contiguousAccesses = 0; ///< Affine, |stride| == payload.
    double stridedAccesses = 0;    ///< Affine, any other stride.
    double irregularAccesses = 0;  ///< Non-affine or Access::Random.
    /// @}

    /// @name Dependence structure.
    /// @{
    /// Longest def-use chain through the whole trace, in cycles.
    double depHeightCycles = 0;
    /// Sum over loops of trips x worst recurrence latency.
    double loopDepCycles = 0;
    /// Sum over loops of trips x busiest body slot count.
    double loopSlotCycles = 0;
    /// Sum over loops of trips x body granule txns x issue interval.
    double loopMemCycles = 0;
    /// Sum over loops of trips x max(recurrence, slot, memory) — the
    /// per-loop initiation-interval roofline.
    double loopRooflineCycles = 0;
    /// Sum over loops of trips x (body dependence height - II bound)
    /// when positive: the statically visible software-pipelining gap.
    double iiGapCycles = 0;
    /// Instructions outside every recovered loop.
    double straightInstrs = 0;
    /// @}

    /// @name Loop shape.
    /// @{
    double loopCount = 0;
    double maxTripCount = 0;
    double maxLoopDepth = 0;
    /// @}

    /// @name Register pressure (live-range sweep).
    /// @{
    double peakLiveValues = 0;
    double peakLiveBytes = 0;
    /// @}

    /**
     * The ordered numeric basis the proxy model prices: a constant
     * bias term followed by the cycle-scale aggregates. Must stay in
     * lockstep with basisNames(); the committed coefficient artifact
     * is versioned against it.
     */
    std::vector<double> basis() const;

    /** Names of basis() entries, same order. */
    static const std::vector<std::string> &basisNames();

    /** Stable serialization (schema kFeatureSchema). Field order and
     *  number formatting are deterministic, so two extractions of the
     *  same trace are byte-identical. */
    json::Value toJson() const;
};

/**
 * Extract features from valid lifted IR. Panics (vassert) on IR with
 * SSA violations or degenerate loops (tripCount < 2, empty body, span
 * past the end of the trace) — liftProgram sanitizes its own output,
 * so tripping this means a hand-built IR skipped the lifting guards.
 */
FeatureVector
extractFeatures(const StaticIr &ir,
                const tpc::TpcParams &params = tpc::TpcParams::forGaudi2());

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_PREDICT_FEATURES_H
