#include "analysis/predict/tunable.h"

#include <algorithm>

#include "analysis/kernel_registry.h"
#include "common/logging.h"
#include "common/rng.h"
#include "hw/mme.h"
#include "kern/embedding.h"
#include "kern/gather_scatter.h"
#include "kern/layernorm.h"
#include "kern/softmax.h"
#include "kern/stream.h"

namespace vespera::analysis {

std::string
TuneConfig::label() const
{
    std::string s = strfmt("size=%lld", static_cast<long long>(size));
    if (unroll > 0)
        s += strfmt(" unroll=%d", unroll);
    if (numTpcs > 0)
        s += strfmt(" tpcs=%d", numTpcs);
    if (accessBytes > 0)
        s += strfmt(" access=%lluB",
                    static_cast<unsigned long long>(accessBytes));
    if (accumulators > 0)
        s += strfmt(" acc=%d", accumulators);
    if (interleave > 0)
        s += strfmt(" il=%d", interleave);
    if (geometry >= 0) {
        const auto &geoms = hw::MmeModel::candidateGeometries();
        vassert(static_cast<std::size_t>(geometry) < geoms.size(),
                "geometry index out of range");
        s += " geom=" +
             geoms[static_cast<std::size_t>(geometry)].label();
    }
    return s;
}

std::size_t
TunableKernel::configCount() const
{
    auto axis = [](std::size_t n) { return n == 0 ? 1 : n; };
    return axis(unrolls.size()) * axis(tpcCounts.size()) *
           axis(accessBytes.size()) * axis(accumulators.size()) *
           axis(interleaves.size()) * axis(geometries.size());
}

TunableRegistry &
TunableRegistry::instance()
{
    static TunableRegistry registry;
    return registry;
}

void
TunableRegistry::add(TunableKernel kernel)
{
    for (const TunableKernel &e : entries_) {
        vassert(e.name != kernel.name,
                "duplicate tunable kernel '%s'", kernel.name.c_str());
    }
    if (kernel.kind == TuneKind::Tpc) {
        vassert(kernel.produce != nullptr,
                "TPC tunable '%s' without a produce hook",
                kernel.name.c_str());
        vassert(std::find(kernel.sizes.begin(), kernel.sizes.end(),
                          kernel.base.size) != kernel.sizes.end(),
                "tunable '%s': base size must be a calibration size",
                kernel.name.c_str());
    }
    entries_.push_back(std::move(kernel));
}

std::vector<std::string>
TunableRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const TunableKernel &e : entries_)
        out.push_back(e.name);
    return out;
}

const TunableKernel &
TunableRegistry::get(const std::string &name) const
{
    for (const TunableKernel &e : entries_) {
        if (e.name == name)
            return e;
    }
    vpanic("unknown tunable kernel '%s'", name.c_str());
}

TunableKernel
reduceAxes(const TunableKernel &k)
{
    TunableKernel r = k;
    auto slice = [](auto &axis) {
        if (axis.size() > 2)
            axis = {axis.front(), axis.back()};
    };
    slice(r.unrolls);
    slice(r.tpcCounts);
    slice(r.accessBytes);
    slice(r.accumulators);
    slice(r.interleaves);
    slice(r.geometries);
    return r;
}

namespace {

tpc::Program
produceStream(kern::StreamOp op, const TuneConfig &c)
{
    kern::StreamConfig config;
    config.op = op;
    config.numElements = static_cast<std::uint64_t>(c.size);
    config.accessBytes = c.accessBytes;
    config.unroll = c.unroll;
    config.numTpcs = c.numTpcs;
    return captureTrace([config] { kern::runStreamGaudi(config); });
}

TunableKernel
streamTunable(const char *name, kern::StreamOp op, int baseUnroll,
              Bytes baseAccess)
{
    TunableKernel k;
    k.name = name;
    k.base.size = 1 << 14;
    k.base.unroll = baseUnroll;
    k.base.accessBytes = baseAccess;
    k.base.numTpcs = 24;
    k.sizes = {1 << 12, 1 << 13, 1 << 14};
    k.heldOutSizes = {3 << 12, 1 << 15};
    k.unrolls = {1, 2, 4, 8};
    k.accessBytes = {64, 128, 256, 512};
    k.tpcCounts = {8, 16, 24};
    k.produce = [op](const TuneConfig &c) {
        return produceStream(op, c);
    };
    return k;
}

TunableKernel
rowKernelTunable(const char *name,
                 std::function<tpc::Program(const TuneConfig &)> produce)
{
    TunableKernel k;
    k.name = name;
    k.base.size = 512;
    k.base.numTpcs = 24;
    k.sizes = {128, 256, 512};
    k.heldOutSizes = {192, 768};
    k.tpcCounts = {4, 8, 24};
    k.produce = std::move(produce);
    return k;
}

constexpr std::int64_t tuneRows = 8;

TunableKernel
gatherScatterTunable(const char *name, bool scatter,
                     std::uint64_t seed)
{
    TunableKernel k;
    k.name = name;
    k.base.size = 1 << 12;
    k.base.unroll = 16;
    k.base.accumulators = 4;
    k.base.numTpcs = 24;
    k.sizes = {1 << 10, 1 << 11, 1 << 12};
    k.heldOutSizes = {3 << 10};
    k.unrolls = {4, 8, 16, 32};
    k.accumulators = {1, 2, 4, 8};
    k.tpcCounts = {8, 24};
    k.produce = [scatter, seed](const TuneConfig &c) {
        kern::GatherScatterConfig config;
        config.numVectors = static_cast<std::uint64_t>(c.size);
        config.vectorBytes = 256;
        config.accessFraction = 0.25;
        config.scatter = scatter;
        config.unroll = c.unroll;
        config.accumulators = c.accumulators;
        config.numTpcs = c.numTpcs;
        Rng rng(seed);
        return captureTrace(
            [&] { kern::runGatherScatterGaudi(config, rng); });
    };
    return k;
}

TunableKernel
embeddingTunable(const char *name, kern::EmbeddingVariant variant,
                 int baseUnroll, int baseInterleave)
{
    TunableKernel k;
    k.name = name;
    k.base.size = 32;
    k.base.unroll = baseUnroll;
    k.base.interleave = baseInterleave;
    k.sizes = {8, 16, 32};
    k.heldOutSizes = {24, 48};
    k.unrolls = {1, 2, 4, 8};
    k.interleaves = {1, 2, 3, 4};
    k.produce = [variant](const TuneConfig &c) {
        kern::EmbeddingConfig config;
        config.numTables = 2;
        config.rowsPerTable = 256;
        config.vectorBytes = 256;
        config.batch = static_cast<int>(c.size);
        config.pooling = 8;
        kern::EmbeddingLayerGaudi layer(config);
        Rng rng(42);
        return captureTrace([&] {
            layer.run(variant, rng, c.unroll, c.interleave);
        });
    };
    return k;
}

TunableKernel
gemmTunable(const char *name, hw::GemmShape shape, DataType dt)
{
    TunableKernel k;
    k.name = name;
    k.kind = TuneKind::Mme;
    k.gemmShape = shape;
    k.gemmDt = dt;
    k.base.size = shape.m;
    const auto &geoms = hw::MmeModel::candidateGeometries();
    for (std::size_t i = 0; i < geoms.size(); i++) {
        k.geometries.push_back(static_cast<int>(i));
        const hw::MmeGeometry fixed = hw::MmeModel::fixedGeometry();
        if (geoms[i].height == fixed.height &&
            geoms[i].width == fixed.width &&
            geoms[i].count == fixed.count) {
            k.base.geometry = static_cast<int>(i);
        }
    }
    vassert(k.base.geometry >= 0,
            "fixed MME geometry missing from the candidate set");
    return k;
}

} // namespace

void
registerTunableKernels()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    TunableRegistry &reg = TunableRegistry::instance();

    reg.add(rowKernelTunable("softmax", [](const TuneConfig &c) {
        kern::SoftmaxConfig config;
        config.rows = tuneRows;
        config.cols = c.size;
        config.numTpcs = c.numTpcs;
        return captureTrace([config] { kern::runSoftmaxGaudi(config); });
    }));
    reg.add(rowKernelTunable("layernorm", [](const TuneConfig &c) {
        kern::NormConfig config;
        config.kind = kern::NormKind::LayerNorm;
        config.rows = tuneRows;
        config.cols = c.size;
        config.numTpcs = c.numTpcs;
        return captureTrace([config] { kern::runNormGaudi(config); });
    }));
    reg.add(rowKernelTunable("rmsnorm", [](const TuneConfig &c) {
        kern::NormConfig config;
        config.kind = kern::NormKind::RmsNorm;
        config.rows = tuneRows;
        config.cols = c.size;
        config.numTpcs = c.numTpcs;
        return captureTrace([config] { kern::runNormGaudi(config); });
    }));

    reg.add(streamTunable("stream_triad_tuned", kern::StreamOp::Triad,
                          4, 256));
    reg.add(streamTunable("stream_triad_naive", kern::StreamOp::Triad,
                          1, 64));
    reg.add(streamTunable("stream_add_tuned", kern::StreamOp::Add,
                          4, 256));

    reg.add(gatherScatterTunable("gather", false, 0x9a7e4));
    reg.add(gatherScatterTunable("scatter", true, 1234));

    reg.add(embeddingTunable("embedding_sdk",
                             kern::EmbeddingVariant::SdkSingleTable, 2,
                             3));
    reg.add(embeddingTunable("embedding_single",
                             kern::EmbeddingVariant::SingleTable, 4,
                             4));
    reg.add(embeddingTunable("embedding_batched",
                             kern::EmbeddingVariant::BatchedTable, 4,
                             4));

    // MME-geometry axis: a skinny decode-style projection (geometry
    // selection matters: few output rows) and a fat prefill MLP.
    reg.add(gemmTunable("gemm_decode_qkv",
                        hw::GemmShape{32, 4096, 4096, 1},
                        DataType::BF16));
    reg.add(gemmTunable("gemm_prefill_mlp",
                        hw::GemmShape{512, 2048, 8192, 1},
                        DataType::BF16));
}

} // namespace vespera::analysis
