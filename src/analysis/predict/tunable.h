/**
 * @file
 * The tunable-kernel corpus: every registry kernel (kernel_registry.h)
 * re-exposed with its tuning knobs — unroll factor, TPC count, access
 * granularity, gather accumulators / embedding interleave, MME
 * geometry — as enumerable axes plus a `produce` hook that re-traces
 * the kernel at any knob setting. The autotuner (tuner.h) enumerates
 * the cross product, screens it through the proxy model, and verifies
 * survivors with the exact static scheduler; calibration
 * (calibrate.cc) sweeps the `sizes` axis to fit the proxy and holds
 * out `heldOutSizes` for the accuracy contract.
 *
 * Shapes here are deliberately smaller than the lint registry's: the
 * tuner re-traces kernels dozens of times (anchors, top-k
 * verification, the exhaustive test oracle), so each trace must cost
 * milliseconds, not seconds. The knob *defaults* match the registry's
 * shipped configurations — that is what the tune-opportunity ratchet
 * compares against.
 */

#ifndef VESPERA_ANALYSIS_PREDICT_TUNABLE_H
#define VESPERA_ANALYSIS_PREDICT_TUNABLE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "hw/gemm_cost.h"
#include "tpc/program.h"

namespace vespera::analysis {

/** One point in a kernel's tuning space. Axes a kernel does not
 *  expose stay at their 0 / -1 "not applicable" defaults. */
struct TuneConfig
{
    /// Family-defined problem size (elements, columns, vectors,
    /// batch). A shape, not a knob: tuning sweeps knobs at fixed size.
    std::int64_t size = 0;
    int unroll = 0;        ///< Manual unroll factor.
    int numTpcs = 0;       ///< TPCs the launch spreads across.
    Bytes accessBytes = 0; ///< Per-access granularity (STREAM knob).
    int accumulators = 0;  ///< Independent accumulator chains (gather).
    int interleave = 0;    ///< Samples pipelined per TPC (embedding).
    /// Index into hw::MmeModel::candidateGeometries(); -1 = n/a.
    int geometry = -1;

    /// Compact human-readable tag listing only the applicable knobs.
    std::string label() const;

    bool operator==(const TuneConfig &o) const = default;
};

/** How a tunable entry is evaluated. */
enum class TuneKind : std::uint8_t {
    Tpc, ///< produce() -> trace -> lift -> scheduleStatic.
    Mme, ///< hw::MmeModel::gemmWithGeometry on `gemmShape`.
};

/** One tunable kernel: the shipped default, the axes, the evaluator. */
struct TunableKernel
{
    std::string name;
    TuneKind kind = TuneKind::Tpc;
    /// The registry's shipped knob settings at the tuning size.
    TuneConfig base;
    /// Calibration sizes (base.size must be among them) and the
    /// held-out sizes the ±15% accuracy contract is tested on.
    std::vector<std::int64_t> sizes;
    std::vector<std::int64_t> heldOutSizes;
    /// Knob axes; empty = the knob is not tunable for this kernel.
    /// Base values are always included when non-empty.
    std::vector<int> unrolls;
    std::vector<int> tpcCounts;
    std::vector<Bytes> accessBytes;
    std::vector<int> accumulators;
    std::vector<int> interleaves;
    std::vector<int> geometries;
    /// Trace the kernel at `config` (TuneKind::Tpc). Must be
    /// deterministic; returns the largest per-TPC Program slice.
    std::function<tpc::Program(const TuneConfig &)> produce;
    /// GEMM workload (TuneKind::Mme); config.geometry selects the
    /// MME array geometry.
    hw::GemmShape gemmShape;
    DataType gemmDt = DataType::BF16;

    /// Size of the knob cross product at base.size.
    std::size_t configCount() const;
};

/** Name -> tunable registry. Not thread-safe (CLI/test use only). */
class TunableRegistry
{
  public:
    static TunableRegistry &instance();

    TunableRegistry() = default;
    TunableRegistry(const TunableRegistry &) = delete;
    TunableRegistry &operator=(const TunableRegistry &) = delete;

    void add(TunableKernel kernel);
    std::vector<std::string> names() const;
    const TunableKernel &get(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<TunableKernel> entries_;
};

/**
 * Populate TunableRegistry::instance() with the 11 registry kernels
 * (tuning-sized) plus two GEMM entries exercising the MME-geometry
 * axis. Idempotent.
 */
void registerTunableKernels();

/**
 * `k` with every knob axis sliced to its first and last values: the
 * reduced space the exhaustive-vs-tuner rank-agreement test enumerates
 * with the exact scheduler in reasonable time.
 */
TunableKernel reduceAxes(const TunableKernel &k);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_PREDICT_TUNABLE_H
