/**
 * @file
 * The compiled-in copy of tools/predict_coeffs.json.
 *
 * Regenerate with:
 *   vespera-lint tune --calibrate=tools/predict_coeffs.json
 * then paste the file's contents between the raw-string markers below
 * (tests/analysis/test_predict_proxy.cc pins the two copies to be
 * numerically identical, so a stale paste fails CI, not production).
 */

namespace vespera::analysis {

extern const char *kBuiltinProxyCoeffsJson;

const char *kBuiltinProxyCoeffsJson =
#include "analysis/predict/coeffs_builtin.inc"
    ;

} // namespace vespera::analysis
