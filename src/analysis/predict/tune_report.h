/**
 * @file
 * Rendering of autotuner results: human-readable text, the
 * "vespera-lint-tune/v1" JSON schema (best-found configuration per
 * kernel as a machine-readable fix hint, exact and proxy cycles,
 * screening/verification counts), and the bridge onto the trace
 * report machinery so the warnings baseline ratchet applies to tune
 * runs (tools/lint_tune_baseline.json) exactly as it does to the
 * trace and static lint modes.
 *
 * Everything serialized here is deterministic — cycles come from the
 * static scheduler and the proxy's pure arithmetic, never wall clock —
 * so vespera-stat can diff two tune documents byte-for-byte
 * reproducibly (the bench-trajectory job does).
 */

#ifndef VESPERA_ANALYSIS_PREDICT_TUNE_REPORT_H
#define VESPERA_ANALYSIS_PREDICT_TUNE_REPORT_H

#include <string>
#include <vector>

#include "analysis/predict/tuner.h"
#include "analysis/report.h"
#include "common/json.h"

namespace vespera::analysis {

namespace rules {
/// The shipped configuration is beaten by another point of its own
/// tuning space (fix hint carries the better configuration).
inline constexpr const char *tuneOpportunity = "tune-opportunity";
} // namespace rules

/// Improvement fraction above which a tune-opportunity is a Warning
/// (baseline-ratcheted); between info and warn it is an Info.
inline constexpr double kTuneWarnImprovement = 0.10;
inline constexpr double kTuneInfoImprovement = 0.02;

/** Full tune run as JSON (schema "vespera-lint-tune/v1"). */
json::Value tuneReportJson(const std::vector<TuneResult> &results);

/** Human-readable report; layout mirrors staticLintReportText. */
std::string tuneReportText(const std::vector<TuneResult> &results,
                           bool verbose);

/**
 * Project tune results onto trace-side LintEntry records so
 * baselineJson / checkAgainstBaseline apply verbatim: one
 * tune-opportunity diagnostic per kernel whose best configuration
 * improves on the shipped one.
 */
std::vector<LintEntry>
tuneToLintEntries(const std::vector<TuneResult> &results);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_PREDICT_TUNE_REPORT_H
