#include "analysis/predict/features.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "common/logging.h"

namespace vespera::analysis {

namespace {

/// Histogram bucket for a payload size: <=32, 64, 128, 256, 512,
/// 1024, 2048 B, then everything larger.
int
bucketFor(Bytes bytes)
{
    static constexpr Bytes edges[] = {32, 64, 128, 256, 512, 1024, 2048};
    for (int i = 0; i < kGranularityBuckets - 1; i++) {
        if (bytes <= edges[i])
            return i;
    }
    return kGranularityBuckets - 1;
}

double
granuleTxnsFor(Bytes payload, Bytes granule)
{
    if (payload == 0)
        return 0;
    return std::ceil(static_cast<double>(payload) /
                     static_cast<double>(granule));
}

/// Product of the trip counts of every loop strictly enclosing `l`:
/// the IR records one canonical copy of a nested loop inside its
/// parent's first iteration, so per-trace totals need the ancestor
/// trip weight.
double
ancestorTrips(const StaticIr &ir, const Loop &l)
{
    double w = 1;
    std::int32_t p = l.parent;
    while (p >= 0) {
        const Loop &parent = ir.loops[static_cast<std::size_t>(p)];
        w *= static_cast<double>(parent.tripCount);
        p = parent.parent;
    }
    return w;
}

/// Longest latency-weighted def-use chain through instrs[first,
/// first + count): height at each instruction = max over sources of
/// (producer height + producer result latency), issue itself costing
/// one cycle. Sources defined before `first` are treated as ready.
double
chainHeight(const StaticIr &ir, std::size_t first, std::size_t count,
            const tpc::TpcParams &params)
{
    const auto &instrs = ir.program->instrs();
    std::vector<double> height(count, 0);
    double worst = 0;
    for (std::size_t k = 0; k < count; k++) {
        const tpc::Instr &instr = instrs[first + k];
        double h = 0;
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src < 0)
                continue;
            const std::int64_t def =
                ir.defIndex[static_cast<std::size_t>(src)];
            if (def < 0 || static_cast<std::size_t>(def) < first ||
                static_cast<std::size_t>(def) >= first + k) {
                continue;
            }
            const std::size_t dk =
                static_cast<std::size_t>(def) - first;
            const double ready =
                height[dk] +
                tpc::resultLatency(instrs[static_cast<std::size_t>(def)],
                                   params);
            h = std::max(h, ready);
        }
        height[k] = h + 1; // The issue cycle itself.
        worst = std::max(worst, height[k]);
    }
    return worst;
}

} // namespace

std::vector<double>
FeatureVector::basis() const
{
    return {
        1.0, // Bias.
        instructions,
        busiestSlotCount,
        memBoundCycles,
        granuleWasteCycles,
        hingeHalfGranule,
        depHeightCycles,
        iiGapCycles,
        loopRooflineCycles,
        loopDepCycles,
        straightInstrs,
        irregularAccesses,
        subGranuleAccesses,
        peakLiveBytes / 1024.0,
    };
}

const std::vector<std::string> &
FeatureVector::basisNames()
{
    static const std::vector<std::string> names = {
        "bias",
        "instructions",
        "busiest_slot",
        "mem_bound_cycles",
        "granule_waste_cycles",
        "hinge_half_granule",
        "dep_height_cycles",
        "ii_gap_cycles",
        "loop_roofline_cycles",
        "loop_dep_cycles",
        "straight_instrs",
        "irregular_accesses",
        "sub_granule_accesses",
        "peak_live_kib",
    };
    return names;
}

json::Value
FeatureVector::toJson() const
{
    std::map<std::string, json::Value> f;
    f["instructions"] = json::Value::makeNumber(instructions);
    static const char *slotNames[tpc::numSlots] = {"load", "store",
                                                   "vector", "scalar"};
    for (int s = 0; s < tpc::numSlots; s++) {
        f[std::string("slot_") + slotNames[s]] =
            json::Value::makeNumber(slotCounts[s]);
    }
    f["busiest_slot"] = json::Value::makeNumber(busiestSlotCount);
    f["global_accesses"] = json::Value::makeNumber(globalAccesses);
    f["global_payload_bytes"] =
        json::Value::makeNumber(globalPayloadBytes);
    f["granule_txns"] = json::Value::makeNumber(granuleTxns);
    f["mem_bound_cycles"] = json::Value::makeNumber(memBoundCycles);
    f["granule_waste_cycles"] =
        json::Value::makeNumber(granuleWasteCycles);
    f["hinge_half_granule"] = json::Value::makeNumber(hingeHalfGranule);
    {
        std::vector<json::Value> hist;
        hist.reserve(kGranularityBuckets);
        for (double h : granularityHist)
            hist.push_back(json::Value::makeNumber(h));
        f["granularity_hist"] = json::Value::makeArray(std::move(hist));
    }
    f["sub_granule_accesses"] =
        json::Value::makeNumber(subGranuleAccesses);
    f["contiguous_accesses"] =
        json::Value::makeNumber(contiguousAccesses);
    f["strided_accesses"] = json::Value::makeNumber(stridedAccesses);
    f["irregular_accesses"] = json::Value::makeNumber(irregularAccesses);
    f["dep_height_cycles"] = json::Value::makeNumber(depHeightCycles);
    f["loop_dep_cycles"] = json::Value::makeNumber(loopDepCycles);
    f["loop_slot_cycles"] = json::Value::makeNumber(loopSlotCycles);
    f["loop_mem_cycles"] = json::Value::makeNumber(loopMemCycles);
    f["loop_roofline_cycles"] =
        json::Value::makeNumber(loopRooflineCycles);
    f["ii_gap_cycles"] = json::Value::makeNumber(iiGapCycles);
    f["straight_instrs"] = json::Value::makeNumber(straightInstrs);
    f["loop_count"] = json::Value::makeNumber(loopCount);
    f["max_trip_count"] = json::Value::makeNumber(maxTripCount);
    f["max_loop_depth"] = json::Value::makeNumber(maxLoopDepth);
    f["peak_live_values"] = json::Value::makeNumber(peakLiveValues);
    f["peak_live_bytes"] = json::Value::makeNumber(peakLiveBytes);

    std::map<std::string, json::Value> doc;
    doc["schema"] = json::Value::makeString(kFeatureSchema);
    doc["kernel"] = json::Value::makeString(kernel);
    doc["shape"] = json::Value::makeString(shape);
    doc["features"] = json::Value::makeObject(std::move(f));
    return json::Value::makeObject(std::move(doc));
}

FeatureVector
extractFeatures(const StaticIr &ir, const tpc::TpcParams &params)
{
    vassert(ir.program != nullptr, "extractFeatures: IR without program");
    vassert(ir.valid(),
            "extractFeatures: IR carries SSA violations; features are "
            "undefined on malformed traces");
    const auto &instrs = ir.program->instrs();
    for (const Loop &l : ir.loops) {
        // liftProgram sanitizes these away; hand-built IRs must too.
        vassert(l.tripCount >= 2,
                "extractFeatures: degenerate loop (tripCount < 2)");
        vassert(l.bodyLength > 0,
                "extractFeatures: degenerate loop (empty body)");
        vassert(l.first + l.span() <= instrs.size(),
                "extractFeatures: loop span past end of trace");
    }

    FeatureVector f;
    f.kernel = ir.program->kernelName();
    f.instructions = static_cast<double>(instrs.size());

    const auto granule = static_cast<double>(params.granule);
    const double halfGranule = granule / 2.0;
    for (const tpc::Instr &instr : instrs) {
        f.slotCounts[static_cast<int>(instr.slot)] += 1;
        if (!tpc::isGlobalMemAccess(instr))
            continue;
        const auto payload = static_cast<double>(instr.memBytes);
        const double txns = granuleTxnsFor(instr.memBytes, params.granule);
        f.globalAccesses += 1;
        f.globalPayloadBytes += payload;
        f.granuleTxns += txns;
        f.granularityHist[bucketFor(instr.memBytes)] += 1;
        if (payload < granule) {
            f.subGranuleAccesses += 1;
            // Knee at the granule: interface cycles moving padding.
            f.granuleWasteCycles += (txns * granule - payload) /
                                    granule *
                                    params.memIssueIntervalCycles;
        }
        if (payload < halfGranule)
            f.hingeHalfGranule += (halfGranule - payload) / halfGranule;
        if (instr.access == tpc::Access::Random)
            f.irregularAccesses += 1;
    }
    for (double c : f.slotCounts)
        f.busiestSlotCount = std::max(f.busiestSlotCount, c);
    f.memBoundCycles = f.granuleTxns * params.memIssueIntervalCycles;

    f.depHeightCycles = chainHeight(ir, 0, instrs.size(), params);

    // Loop aggregates. Leaf loops carry the body-level features (an
    // outer loop's body already contains its inner loops' canonical
    // copies); every loop contributes its recurrence.
    std::vector<char> hasChild(ir.loops.size(), 0);
    for (const Loop &l : ir.loops) {
        if (l.parent >= 0)
            hasChild[static_cast<std::size_t>(l.parent)] = 1;
    }
    for (const Loop &l : ir.loops) {
        const double w = ancestorTrips(ir, l);
        const auto trips = static_cast<double>(l.tripCount);
        f.loopCount += 1;
        f.maxTripCount = std::max(f.maxTripCount, trips);
        f.loopDepCycles += w * trips * l.recurrenceLatency();
        if (hasChild[static_cast<std::size_t>(l.id)])
            continue;
        double bodySlots[tpc::numSlots] = {0, 0, 0, 0};
        double bodyTxns = 0;
        for (std::size_t k = 0; k < l.bodyLength; k++) {
            const tpc::Instr &instr = instrs[l.first + k];
            bodySlots[static_cast<int>(instr.slot)] += 1;
            if (tpc::isGlobalMemAccess(instr))
                bodyTxns += granuleTxnsFor(instr.memBytes, params.granule);
        }
        const double bodySlotMax =
            *std::max_element(bodySlots, bodySlots + tpc::numSlots);
        const double bodyMem = bodyTxns * params.memIssueIntervalCycles;
        const double ii = std::max(
            {l.recurrenceLatency(), bodySlotMax, bodyMem});
        const double bodyHeight =
            chainHeight(ir, l.first, l.bodyLength, params);
        f.loopSlotCycles += w * trips * bodySlotMax;
        f.loopMemCycles += w * trips * bodyMem;
        f.loopRooflineCycles += w * trips * ii;
        f.iiGapCycles += w * trips * std::max(0.0, bodyHeight - ii);

        // Stride classes over the loop's per-position access analysis.
        for (const AffineAccess &a : l.accesses) {
            const double weight = w * trips;
            if (!a.affine) {
                f.irregularAccesses += weight;
            } else if (std::llabs(a.stride) ==
                       static_cast<long long>(a.bytes)) {
                f.contiguousAccesses += weight;
            } else {
                f.stridedAccesses += weight;
            }
        }
    }
    f.maxLoopDepth = static_cast<double>(ir.maxLoopDepth());

    // Instructions outside every loop: total minus top-level spans.
    double covered = 0;
    for (const Loop &l : ir.loops) {
        if (l.parent < 0)
            covered += static_cast<double>(l.span());
    }
    f.straightInstrs =
        std::max(0.0, f.instructions - covered);

    // Register-pressure peak: the same live-range event sweep the
    // register-pressure pass runs (passes_sched.cc), minus the
    // diagnostics.
    struct Event
    {
        std::size_t index;
        std::int64_t deltaValues;
        std::int64_t deltaBytes;
    };
    std::vector<Event> events;
    const auto numValues =
        static_cast<std::size_t>(ir.program->numValues());
    events.reserve(numValues * 2);
    for (std::size_t v = 0; v < numValues; v++) {
        const std::int64_t def = ir.defIndex[v];
        if (def < 0)
            continue;
        std::int64_t last = def;
        if (!ir.users[v].empty())
            last = ir.users[v].back();
        const tpc::Instr &producer =
            instrs[static_cast<std::size_t>(def)];
        const auto bytes = static_cast<std::int64_t>(
            std::max<std::int64_t>(producer.lanes, 1) * 4);
        events.push_back({static_cast<std::size_t>(def), 1, bytes});
        events.push_back(
            {static_cast<std::size_t>(last) + 1, -1, -bytes});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.index != b.index)
                      return a.index < b.index;
                  return a.deltaValues < b.deltaValues; // Kills first.
              });
    std::int64_t live = 0, liveBytes = 0;
    std::int64_t peak = 0, peakBytes = 0;
    for (const Event &e : events) {
        live += e.deltaValues;
        liveBytes += e.deltaBytes;
        if (liveBytes > peakBytes) {
            peakBytes = liveBytes;
            peak = live;
        }
    }
    f.peakLiveValues = static_cast<double>(peak);
    f.peakLiveBytes = static_cast<double>(peakBytes);
    return f;
}

} // namespace vespera::analysis
