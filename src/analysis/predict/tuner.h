/**
 * @file
 * The static design-space autotuner: enumerate a tunable kernel's
 * knob cross product (unroll x TPC count x access granularity x
 * gather accumulators / embedding interleave x MME geometry), screen
 * every configuration through the proxy cost model, then verify only
 * the top-k survivors with the exact static scheduler and report the
 * best configuration found as a machine-readable fix hint.
 *
 * Screening never traces: the tuner records one anchor trace at the
 * shipped configuration plus one per active axis, then scales the
 * anchor's feature basis to any configuration with per-axis power laws
 * (exponent log(f1/f0)/log(x1/x0), linear fallback when a feature
 * vanishes at an anchor). One screened configuration costs a handful
 * of multiplies and a dot product — thousands per second — while the
 * exact scheduler (trace + lift + scheduleStatic) runs only 1 + axes +
 * top-k times per kernel. The screening loop runs under
 * runtime::parallel_map with capture-deferred obs counters, so
 * `analysis.predict.*` counts are identical at any --threads.
 */

#ifndef VESPERA_ANALYSIS_PREDICT_TUNER_H
#define VESPERA_ANALYSIS_PREDICT_TUNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/predict/proxy.h"
#include "analysis/predict/tunable.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {

/** Autotuner knobs. */
struct TunerOptions
{
    /// Configurations verified with the exact scheduler.
    int topK = 5;
    tpc::TpcParams params = tpc::TpcParams::forGaudi2();
    /// Proxy coefficients; nullptr = ProxyModel::builtin().
    const ProxyModel *model = nullptr;
    /// Export analysis.predict.* counters (off for test isolation).
    bool exportCounters = true;
};

/** One evaluated configuration. */
struct TuneCandidate
{
    TuneConfig config;
    double proxyCycles = 0;
    /// Exact static-scheduler cycles; -1 when only screened.
    double exactCycles = -1;
};

/** Autotune outcome for one kernel. */
struct TuneResult
{
    std::string kernel;
    std::string shape; ///< "size=N" of the tuning shape.
    /// The shipped configuration, exact-evaluated (the ratchet
    /// reference).
    TuneCandidate base;
    /// Best exact-verified configuration (never worse than base).
    TuneCandidate best;
    /// The top-k by proxy, exact-evaluated, best exact first.
    std::vector<TuneCandidate> verified;
    std::uint64_t configsScreened = 0;
    std::uint64_t exactVerifications = 0;
    /// Mean |proxy - exact| / exact over verified configs, in parts
    /// per million (rounded; deterministic).
    double proxyErrorPpm = 0;
    /// 1 - best.exactCycles / base.exactCycles.
    double improvementFrac = 0;
};

/** The knob cross product at base.size, deterministic order. */
std::vector<TuneConfig> enumerateConfigs(const TunableKernel &k);

/** Exact static-scheduler cycles for one configuration (traces TPC
 *  kernels; analytic for MME entries). */
double exactCycles(const TunableKernel &k, const TuneConfig &config,
                   const tpc::TpcParams &params);

/** Screen + verify one kernel. */
TuneResult autotuneKernel(const TunableKernel &k,
                          const TunerOptions &opts = {});

/** autotuneKernel over every registered tunable whose name contains
 *  `filter` ("" = all), in registration order. */
std::vector<TuneResult> autotuneAll(const std::string &filter = "",
                                    const TunerOptions &opts = {});

/** Exhaustive exact-static search over the full space — the oracle
 *  the rank-agreement test compares autotuneKernel against. */
TuneCandidate exhaustiveBest(const TunableKernel &k,
                             const TunerOptions &opts = {});

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_PREDICT_TUNER_H
