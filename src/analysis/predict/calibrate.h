/**
 * @file
 * Offline proxy calibration: traces every TPC tunable kernel across
 * its calibration sizes and one variation per knob axis, fits the
 * per-family ridge regression (proxy.h) against the exact static
 * scheduler, and reports calibration plus held-out error so the ±15%
 * accuracy contract is visible at fit time, not just in CI.
 *
 * `vespera-lint tune --calibrate=PATH` drives this and writes the
 * versioned coefficient artifact; the committed copies
 * (tools/predict_coeffs.json and the builtin in coeffs_builtin.inc)
 * are its output.
 */

#ifndef VESPERA_ANALYSIS_PREDICT_CALIBRATE_H
#define VESPERA_ANALYSIS_PREDICT_CALIBRATE_H

#include <string>
#include <vector>

#include "analysis/predict/proxy.h"
#include "analysis/predict/tunable.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {

/** Per-family fit quality. Error fractions are max |proxy - exact| /
 *  exact over the named sample set. */
struct CalibrationFamily
{
    std::string name;
    std::size_t samples = 0;
    double maxCalibrationErr = 0;
    double maxHeldOutErr = 0;
};

/** A fitted model plus its fit-quality report. */
struct CalibrationReport
{
    ProxyModel model;
    std::vector<CalibrationFamily> families;

    double maxHeldOutErr() const
    {
        double worst = 0;
        for (const CalibrationFamily &f : families)
            worst = worst > f.maxHeldOutErr ? worst : f.maxHeldOutErr;
        return worst;
    }
};

/**
 * Calibrate against every registered TPC tunable whose name contains
 * `filter` ("" = all). Deterministic: fixed seeds, fixed sample order.
 */
CalibrationReport
calibrateProxy(const std::string &filter = "",
               const tpc::TpcParams &params = tpc::TpcParams::forGaudi2(),
               double ridgeLambda = 1e-3);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_PREDICT_CALIBRATE_H
