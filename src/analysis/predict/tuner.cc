#include "analysis/predict/tuner.h"

#include <algorithm>
#include <cmath>

#include "analysis/static/cost_model.h"
#include "common/logging.h"
#include "hw/mme.h"
#include "obs/counters.h"
#include "obs/selfprof.h"
#include "runtime/parallel.h"

namespace vespera::analysis {

namespace {

/// Knob axes a kernel can expose, in enumeration order.
enum class Axis : int {
    Unroll,
    TpcCount,
    AccessBytes,
    Accumulators,
    Interleave,
    Geometry,
};
constexpr int numAxes = 6;

/// The numeric knob position on `axis` (the x of the power law).
double
axisValue(const TuneConfig &c, Axis axis)
{
    switch (axis) {
      case Axis::Unroll: return c.unroll;
      case Axis::TpcCount: return c.numTpcs;
      case Axis::AccessBytes: return static_cast<double>(c.accessBytes);
      case Axis::Accumulators: return c.accumulators;
      case Axis::Interleave: return c.interleave;
      case Axis::Geometry: return c.geometry;
    }
    return 0;
}

void
setAxisValue(TuneConfig &c, Axis axis, double v)
{
    switch (axis) {
      case Axis::Unroll: c.unroll = static_cast<int>(v); return;
      case Axis::TpcCount: c.numTpcs = static_cast<int>(v); return;
      case Axis::AccessBytes: c.accessBytes = static_cast<Bytes>(v); return;
      case Axis::Accumulators:
        c.accumulators = static_cast<int>(v);
        return;
      case Axis::Interleave: c.interleave = static_cast<int>(v); return;
      case Axis::Geometry: c.geometry = static_cast<int>(v); return;
    }
}

std::vector<double>
axisCandidates(const TunableKernel &k, Axis axis)
{
    std::vector<double> out;
    auto fill = [&out](const auto &axisValues) {
        for (auto v : axisValues)
            out.push_back(static_cast<double>(v));
    };
    switch (axis) {
      case Axis::Unroll: fill(k.unrolls); break;
      case Axis::TpcCount: fill(k.tpcCounts); break;
      case Axis::AccessBytes: fill(k.accessBytes); break;
      case Axis::Accumulators: fill(k.accumulators); break;
      case Axis::Interleave: fill(k.interleaves); break;
      case Axis::Geometry: fill(k.geometries); break;
    }
    return out;
}

/** Per-axis anchor: the variation configuration's basis plus the knob
 *  positions the power-law interpolates between. */
struct AxisAnchor
{
    Axis axis = Axis::Unroll;
    double x0 = 0; ///< Base knob value.
    double x1 = 0; ///< Variation knob value (farthest from x0).
    std::vector<double> basis; ///< Features at the variation config.
};

/**
 * Scale the base-anchor basis to `config`. Positive features follow
 * per-axis power laws composed multiplicatively; features that vanish
 * at an anchor fall back to linear interpolation in the knob value.
 * Exact at every anchor point by construction.
 */
std::vector<double>
scaleBasis(const std::vector<double> &f0,
           const std::vector<AxisAnchor> &anchors,
           const TuneConfig &config)
{
    std::vector<double> out(f0.size());
    for (std::size_t j = 0; j < f0.size(); j++) {
        double v = f0[j];
        double add = 0;
        for (const AxisAnchor &a : anchors) {
            const double x = axisValue(config, a.axis);
            if (x == a.x0)
                continue;
            const double f1 = a.basis[j];
            if (f0[j] > 0 && f1 > 0 && a.x0 > 0 && x > 0) {
                const double e = std::log(f1 / f0[j]) /
                                 std::log(a.x1 / a.x0);
                v *= std::pow(x / a.x0, e);
            } else {
                add += (f1 - f0[j]) * (x - a.x0) / (a.x1 - a.x0);
            }
        }
        out[j] = std::max(0.0, v + add);
    }
    return out;
}

/**
 * MME screening heuristic: geometry-dependent compute cycles (tile
 * rounds times the K-depth plus a switch bubble). Deliberately drops
 * the geometry-independent memory bound and launch overhead — they
 * shift every candidate equally, and the exact gemmWithGeometry pass
 * over the top-k restores full fidelity.
 */
double
mmeProxyCycles(const hw::GemmShape &shape, const hw::MmeGeometry &geom)
{
    const double tilesM =
        std::ceil(static_cast<double>(shape.m) / geom.height);
    const double tilesN =
        std::ceil(static_cast<double>(shape.n) / geom.width);
    const double tiles =
        tilesM * tilesN * static_cast<double>(shape.batch);
    const double rounds = std::ceil(tiles / geom.count);
    return rounds * (static_cast<double>(shape.k) + 16.0) +
           (geom.height + geom.width) / 2.0;
}

double
mmeExactCycles(const TunableKernel &k, const TuneConfig &config)
{
    static const hw::MmeModel model;
    const auto &geoms = hw::MmeModel::candidateGeometries();
    vassert(config.geometry >= 0 &&
                static_cast<std::size_t>(config.geometry) < geoms.size(),
            "MME tunable '%s': bad geometry index", k.name.c_str());
    const hw::GemmCost cost = model.gemmWithGeometry(
        k.gemmShape, k.gemmDt,
        geoms[static_cast<std::size_t>(config.geometry)]);
    return cost.time * model.spec().matrixClock;
}

std::vector<double>
tpcBasisAt(const TunableKernel &k, const TuneConfig &config,
           const tpc::TpcParams &params, double *exactOut)
{
    const tpc::Program program = k.produce(config);
    const StaticIr ir = liftProgram(program);
    vassert(ir.valid(), "tunable '%s' produced a malformed trace",
            k.name.c_str());
    if (exactOut != nullptr)
        *exactOut = scheduleStatic(ir, params).cycles;
    return extractFeatures(ir, params).basis();
}

} // namespace

std::vector<TuneConfig>
enumerateConfigs(const TunableKernel &k)
{
    std::vector<TuneConfig> configs;
    configs.push_back(k.base);
    for (int a = 0; a < numAxes; a++) {
        const Axis axis = static_cast<Axis>(a);
        const std::vector<double> values = axisCandidates(k, axis);
        if (values.empty())
            continue;
        std::vector<TuneConfig> next;
        next.reserve(configs.size() * values.size());
        for (const TuneConfig &c : configs) {
            for (double v : values) {
                TuneConfig e = c;
                setAxisValue(e, axis, v);
                next.push_back(e);
            }
        }
        configs = std::move(next);
    }
    // The shipped configuration is always part of the space, first.
    std::vector<TuneConfig> out;
    out.reserve(configs.size() + 1);
    out.push_back(k.base);
    for (const TuneConfig &c : configs) {
        if (!(c == k.base))
            out.push_back(c);
    }
    return out;
}

double
exactCycles(const TunableKernel &k, const TuneConfig &config,
            const tpc::TpcParams &params)
{
    if (k.kind == TuneKind::Mme)
        return mmeExactCycles(k, config);
    double cycles = 0;
    (void)tpcBasisAt(k, config, params, &cycles);
    return cycles;
}

TuneResult
autotuneKernel(const TunableKernel &k, const TunerOptions &opts)
{
    const ProxyModel &model =
        opts.model != nullptr ? *opts.model : ProxyModel::builtin();
    auto &registry = obs::CounterRegistry::instance();
    obs::Counter &screenedCtr =
        registry.counter("analysis.predict.configs_screened");
    obs::Counter &verifiedCtr =
        registry.counter("analysis.predict.exact_verifications");
    obs::Counter &anchorCtr =
        registry.counter("analysis.predict.anchor_traces");
    obs::Counter &errCtr =
        registry.counter("analysis.predict.proxy_error_ppm");

    TuneResult result;
    result.kernel = k.name;
    result.shape =
        strfmt("size=%lld", static_cast<long long>(k.base.size));

    // Anchors: the shipped configuration (also the exact baseline)
    // plus one variation per active axis.
    std::vector<double> f0;
    std::vector<AxisAnchor> anchors;
    if (k.kind == TuneKind::Tpc) {
        f0 = tpcBasisAt(k, k.base, opts.params,
                        &result.base.exactCycles);
        result.base.config = k.base;
        result.base.proxyCycles = model.predictBasis(k.name, f0);
        if (opts.exportCounters)
            anchorCtr.add(1);
        for (int a = 0; a < numAxes; a++) {
            const Axis axis = static_cast<Axis>(a);
            const std::vector<double> values = axisCandidates(k, axis);
            if (values.size() < 2)
                continue;
            const double x0 = axisValue(k.base, axis);
            vassert(x0 > 0,
                    "tunable '%s': axis %d enumerated but base value "
                    "is unset",
                    k.name.c_str(), a);
            // Variation point: farthest from the base in log space
            // (widest lever arm for the fitted exponent).
            double x1 = x0;
            for (double v : values) {
                if (std::fabs(std::log(v / x0)) >
                    std::fabs(std::log(x1 / x0))) {
                    x1 = v;
                }
            }
            if (x1 == x0)
                continue;
            AxisAnchor anchor;
            anchor.axis = axis;
            anchor.x0 = x0;
            anchor.x1 = x1;
            TuneConfig varied = k.base;
            setAxisValue(varied, axis, x1);
            anchor.basis =
                tpcBasisAt(k, varied, opts.params, nullptr);
            if (opts.exportCounters)
                anchorCtr.add(1);
            anchors.push_back(std::move(anchor));
        }
    } else {
        result.base.config = k.base;
        result.base.exactCycles = mmeExactCycles(k, k.base);
        result.base.proxyCycles =
            mmeProxyCycles(k.gemmShape,
                           hw::MmeModel::candidateGeometries()
                               [static_cast<std::size_t>(
                                   k.base.geometry)]);
    }

    // Screen the full cross product through the proxy. Pure
    // arithmetic per configuration; the obs counter defers under the
    // parallel capture, so counts are thread-count-invariant.
    const std::vector<TuneConfig> configs = enumerateConfigs(k);
    std::vector<double> proxy;
    {
        obs::SelfTimer timer(obs::SelfCat::KernelEval);
        const bool counters = opts.exportCounters;
        proxy = runtime::parallel_map(
            configs.size(), [&](std::size_t i) {
                double cycles = 0;
                if (k.kind == TuneKind::Mme) {
                    cycles = mmeProxyCycles(
                        k.gemmShape,
                        hw::MmeModel::candidateGeometries()
                            [static_cast<std::size_t>(
                                configs[i].geometry)]);
                } else {
                    cycles = model.predictBasis(
                        k.name, scaleBasis(f0, anchors, configs[i]));
                }
                if (counters)
                    screenedCtr.add(1);
                return cycles;
            });
    }
    result.configsScreened = configs.size();

    // Top-k by proxy (stable: ties break toward enumeration order).
    std::vector<std::size_t> order(configs.size());
    for (std::size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&proxy](std::size_t a, std::size_t b) {
                  if (proxy[a] != proxy[b])
                      return proxy[a] < proxy[b];
                  return a < b;
              });
    const std::size_t kTop = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(1, opts.topK)),
        order.size());

    // Exact verification of the survivors.
    double errPpmSum = 0;
    for (std::size_t r = 0; r < kTop; r++) {
        const TuneConfig &config = configs[order[r]];
        TuneCandidate cand;
        cand.config = config;
        cand.proxyCycles = proxy[order[r]];
        cand.exactCycles =
            config == k.base ? result.base.exactCycles
                             : exactCycles(k, config, opts.params);
        if (opts.exportCounters)
            verifiedCtr.add(1);
        errPpmSum += std::round(
            std::fabs(cand.proxyCycles - cand.exactCycles) /
            std::max(1.0, cand.exactCycles) * 1e6);
        result.verified.push_back(cand);
    }
    result.exactVerifications = kTop;
    result.proxyErrorPpm =
        std::round(errPpmSum / static_cast<double>(kTop));
    if (opts.exportCounters)
        errCtr.add(result.proxyErrorPpm);

    std::stable_sort(result.verified.begin(), result.verified.end(),
                     [](const TuneCandidate &a, const TuneCandidate &b) {
                         return a.exactCycles < b.exactCycles;
                     });
    result.best = result.verified.front();
    // Never recommend a regression: the shipped configuration wins
    // ties and beats a mis-screened space.
    if (result.base.exactCycles <= result.best.exactCycles)
        result.best = result.base;
    result.improvementFrac =
        1.0 - result.best.exactCycles /
                  std::max(1.0, result.base.exactCycles);
    return result;
}

std::vector<TuneResult>
autotuneAll(const std::string &filter, const TunerOptions &opts)
{
    std::vector<TuneResult> results;
    for (const std::string &name : TunableRegistry::instance().names()) {
        if (!filter.empty() && name.find(filter) == std::string::npos)
            continue;
        results.push_back(
            autotuneKernel(TunableRegistry::instance().get(name), opts));
    }
    return results;
}

TuneCandidate
exhaustiveBest(const TunableKernel &k, const TunerOptions &opts)
{
    TuneCandidate best;
    for (const TuneConfig &config : enumerateConfigs(k)) {
        const double cycles = exactCycles(k, config, opts.params);
        if (best.exactCycles < 0 || cycles < best.exactCycles) {
            best.config = config;
            best.exactCycles = cycles;
        }
    }
    return best;
}

} // namespace vespera::analysis
