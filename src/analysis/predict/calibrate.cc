#include "analysis/predict/calibrate.h"

#include <cmath>

#include "analysis/predict/features.h"
#include "analysis/predict/tuner.h"
#include "analysis/static/cost_model.h"
#include "common/logging.h"

namespace vespera::analysis {

namespace {

struct Sample
{
    std::vector<double> basis;
    double exactCycles = 0;
};

Sample
sampleAt(const TunableKernel &k, const TuneConfig &config,
         const tpc::TpcParams &params)
{
    const tpc::Program program = k.produce(config);
    const StaticIr ir = liftProgram(program);
    vassert(ir.valid(),
            "tunable '%s' produced a malformed trace during "
            "calibration",
            k.name.c_str());
    Sample s;
    s.basis = extractFeatures(ir, params).basis();
    s.exactCycles = scheduleStatic(ir, params).cycles;
    return s;
}

/** Calibration configurations: the full knob cross product
 *  (enumerateConfigs) at every calibration size. The cross product is
 *  exactly what screening must rank, and sweeping it per size lets
 *  the fit observe size x knob interactions — without them the
 *  held-out size extrapolation (the ±15% contract) is dominated by
 *  whichever knob configurations happen to share the base size. */
std::vector<TuneConfig>
calibrationConfigs(const TunableKernel &k)
{
    std::vector<TuneConfig> configs;
    for (std::int64_t size : k.sizes) {
        for (TuneConfig c : enumerateConfigs(k)) {
            c.size = size;
            configs.push_back(c);
        }
    }
    return configs;
}

} // namespace

CalibrationReport
calibrateProxy(const std::string &filter, const tpc::TpcParams &params,
               double ridgeLambda)
{
    const TunableRegistry &reg = TunableRegistry::instance();
    std::vector<CalibrationSample> samples;
    std::vector<std::string> fitted;
    for (const std::string &name : reg.names()) {
        const TunableKernel &k = reg.get(name);
        if (k.kind != TuneKind::Tpc)
            continue; // MME screening is closed-form, not fitted.
        if (!filter.empty() && name.find(filter) == std::string::npos)
            continue;
        for (const TuneConfig &config : calibrationConfigs(k)) {
            const Sample s = sampleAt(k, config, params);
            // The held-out contract is evaluated on the base-knob
            // size sweep; emphasize those rows so knob variations
            // (which only need to rank) cannot pull the fit off it.
            TuneConfig baseAtSize = k.base;
            baseAtSize.size = config.size;
            const double weight = config == baseAtSize ? 64.0 : 1.0;
            samples.push_back({name, s.basis, s.exactCycles, weight});
        }
        fitted.push_back(name);
    }
    vassert(!samples.empty(), "no tunable kernels match '%s'",
            filter.c_str());

    CalibrationReport report;
    report.model = fitProxyModel(samples, ridgeLambda);

    for (const std::string &name : fitted) {
        const TunableKernel &k = reg.get(name);
        CalibrationFamily fam;
        fam.name = name;
        for (const CalibrationSample &s : samples) {
            if (s.family != name)
                continue;
            fam.samples++;
            const double predicted =
                report.model.predictBasis(name, s.basis);
            fam.maxCalibrationErr = std::max(
                fam.maxCalibrationErr,
                std::fabs(predicted - s.exactCycles) /
                    std::max(1.0, s.exactCycles));
        }
        for (std::int64_t size : k.heldOutSizes) {
            TuneConfig c = k.base;
            c.size = size;
            const Sample s = sampleAt(k, c, params);
            const double predicted =
                report.model.predictBasis(name, s.basis);
            fam.maxHeldOutErr = std::max(
                fam.maxHeldOutErr,
                std::fabs(predicted - s.exactCycles) /
                    std::max(1.0, s.exactCycles));
        }
        report.families.push_back(fam);
    }
    return report;
}

} // namespace vespera::analysis
