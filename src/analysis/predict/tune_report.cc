#include "analysis/predict/tune_report.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace vespera::analysis {

namespace {

json::Value
num(double v)
{
    return json::Value::makeNumber(v);
}

json::Value
str(std::string s)
{
    return json::Value::makeString(std::move(s));
}

json::Value
configJson(const TuneConfig &c)
{
    std::map<std::string, json::Value> m;
    m["label"] = str(c.label());
    m["size"] = num(static_cast<double>(c.size));
    m["unroll"] = num(c.unroll);
    m["num_tpcs"] = num(c.numTpcs);
    m["access_bytes"] = num(static_cast<double>(c.accessBytes));
    m["accumulators"] = num(c.accumulators);
    m["interleave"] = num(c.interleave);
    m["geometry"] = num(c.geometry);
    return json::Value::makeObject(std::move(m));
}

json::Value
candidateJson(const TuneCandidate &c)
{
    std::map<std::string, json::Value> m;
    m["config"] = configJson(c.config);
    m["proxy_cycles"] = num(c.proxyCycles);
    m["exact_cycles"] = num(c.exactCycles);
    return json::Value::makeObject(std::move(m));
}

} // namespace

json::Value
tuneReportJson(const std::vector<TuneResult> &results)
{
    std::map<std::string, json::Value> root;
    root["schema"] = str("vespera-lint-tune/v1");
    std::vector<json::Value> kernels;
    kernels.reserve(results.size());
    std::uint64_t screened = 0;
    std::uint64_t verifications = 0;
    int opportunities = 0;
    for (const TuneResult &r : results) {
        std::map<std::string, json::Value> m;
        m["kernel"] = str(r.kernel);
        m["shape"] = str(r.shape);
        m["base"] = candidateJson(r.base);
        m["best"] = candidateJson(r.best);
        {
            std::vector<json::Value> verified;
            verified.reserve(r.verified.size());
            for (const TuneCandidate &c : r.verified)
                verified.push_back(candidateJson(c));
            m["verified"] = json::Value::makeArray(std::move(verified));
        }
        m["configs_screened"] =
            num(static_cast<double>(r.configsScreened));
        m["exact_verifications"] =
            num(static_cast<double>(r.exactVerifications));
        m["proxy_error_ppm"] = num(r.proxyErrorPpm);
        m["improvement_frac"] = num(r.improvementFrac);
        kernels.push_back(json::Value::makeObject(std::move(m)));
        screened += r.configsScreened;
        verifications += r.exactVerifications;
        if (r.improvementFrac > kTuneInfoImprovement)
            opportunities++;
    }
    root["kernels"] = json::Value::makeArray(std::move(kernels));
    {
        std::map<std::string, json::Value> totals;
        totals["kernels"] = num(static_cast<double>(results.size()));
        totals["configs_screened"] =
            num(static_cast<double>(screened));
        totals["exact_verifications"] =
            num(static_cast<double>(verifications));
        totals["opportunities"] = num(opportunities);
        root["totals"] = json::Value::makeObject(std::move(totals));
    }
    return json::Value::makeObject(std::move(root));
}

std::string
tuneReportText(const std::vector<TuneResult> &results, bool verbose)
{
    std::ostringstream os;
    std::uint64_t screened = 0;
    int opportunities = 0;
    for (const TuneResult &r : results) {
        screened += r.configsScreened;
        const bool tuned = r.improvementFrac > kTuneInfoImprovement;
        if (tuned)
            opportunities++;
        if (!tuned && !verbose) {
            char line[256];
            std::snprintf(line, sizeof(line),
                          "  OK  %s [%s] %.0f cycles (screened %llu)\n",
                          r.kernel.c_str(), r.shape.c_str(),
                          r.base.exactCycles,
                          static_cast<unsigned long long>(
                              r.configsScreened));
            os << line;
            continue;
        }
        os << "==== " << r.kernel << " [" << r.shape << "] ====\n";
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "  screened %llu configs, verified %llu; mean proxy "
            "error %.0f ppm\n",
            static_cast<unsigned long long>(r.configsScreened),
            static_cast<unsigned long long>(r.exactVerifications),
            r.proxyErrorPpm);
        os << line;
        std::snprintf(line, sizeof(line),
                      "  base: %s -> %.0f cycles\n",
                      r.base.config.label().c_str(),
                      r.base.exactCycles);
        os << line;
        std::snprintf(line, sizeof(line),
                      "  best: %s -> %.0f cycles (%.1f%% faster)\n",
                      r.best.config.label().c_str(),
                      r.best.exactCycles, r.improvementFrac * 100.0);
        os << line;
        if (verbose) {
            for (const TuneCandidate &c : r.verified) {
                std::snprintf(line, sizeof(line),
                              "    %s: exact %.0f, proxy %.0f\n",
                              c.config.label().c_str(), c.exactCycles,
                              c.proxyCycles);
                os << line;
            }
        }
    }
    char totals[128];
    std::snprintf(totals, sizeof(totals),
                  "%zu kernels tuned, %llu configs screened, %d "
                  "opportunit%s\n",
                  results.size(),
                  static_cast<unsigned long long>(screened),
                  opportunities, opportunities == 1 ? "y" : "ies");
    os << totals;
    return os.str();
}

std::vector<LintEntry>
tuneToLintEntries(const std::vector<TuneResult> &results)
{
    std::vector<LintEntry> out;
    out.reserve(results.size());
    for (const TuneResult &r : results) {
        LintEntry e;
        e.kernel = r.kernel;
        e.shape = r.shape;
        e.report.kernel = r.kernel;
        e.report.cycles = r.base.exactCycles;
        if (r.improvementFrac > kTuneInfoImprovement) {
            Diagnostic d;
            d.rule = rules::tuneOpportunity;
            d.severity = r.improvementFrac > kTuneWarnImprovement
                             ? Severity::Warning
                             : Severity::Info;
            d.kernel = r.kernel;
            d.message = strfmt(
                "shipped config %s loses %.1f%% to a tuning-space "
                "neighbor",
                r.base.config.label().c_str(),
                r.improvementFrac * 100.0);
            d.fixHint =
                strfmt("retune to %s (%.0f -> %.0f cycles)",
                       r.best.config.label().c_str(),
                       r.base.exactCycles, r.best.exactCycles);
            d.costCycles = r.base.exactCycles - r.best.exactCycles;
            RuleSummary &summary = e.report.rules[d.rule];
            summary.count++;
            summary.costCycles += d.costCycles;
            e.report.diagnostics.push_back(std::move(d));
        }
        out.push_back(std::move(e));
    }
    return out;
}

} // namespace vespera::analysis
