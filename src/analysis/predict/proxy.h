/**
 * @file
 * The analytic/fitted proxy cost model: per-family linear coefficients
 * over the feature basis (features.h), calibrated offline against the
 * exact static scheduler (cost_model.h) on the kernel registry.
 *
 * Prediction is one dot product, which is what lets the autotuner
 * (tuner.h) screen thousands of configurations per second. The
 * coefficients ship as a versioned JSON artifact
 * (tools/predict_coeffs.json, schema "vespera-predict-coeffs/v1") and
 * as a byte-identical builtin copy compiled into the library so
 * binaries predict correctly from any working directory; a test pins
 * the two together. Accuracy contract: within ±15% of scheduleStatic
 * on held-out shapes of every registry kernel (the static model is
 * itself within ±10% of the cycle simulator), enforced by
 * tests/analysis/test_predict_proxy.cc and CI's predict-accuracy job.
 */

#ifndef VESPERA_ANALYSIS_PREDICT_PROXY_H
#define VESPERA_ANALYSIS_PREDICT_PROXY_H

#include <map>
#include <string>
#include <vector>

#include "analysis/predict/features.h"
#include "common/json.h"

namespace vespera::analysis {

/// Coefficient-artifact schema tag.
inline constexpr const char *kProxyCoeffsSchema =
    "vespera-predict-coeffs/v1";

/** Per-family linear model: predicted cycles = w . basis(features). */
class ProxyModel
{
  public:
    /** Cycles for `f`, using the family matching f.kernel exactly, or
     *  the pooled "default" weights. Clamped to >= 1. */
    double predict(const FeatureVector &f) const;

    /** predict() on a raw basis vector (the screening fast path). */
    double predictBasis(const std::string &family,
                        const std::vector<double> &basis) const;

    bool hasFamily(const std::string &family) const
    {
        return families_.count(family) != 0;
    }

    /** Family weight vectors, keyed by kernel name ("default" =
     *  pooled fallback). Sizes match FeatureVector::basisNames(). */
    const std::map<std::string, std::vector<double>> &families() const
    {
        return families_;
    }

    void setFamily(const std::string &family,
                   std::vector<double> weights);

    json::Value toJson() const;
    static bool fromJson(const json::Value &doc, ProxyModel &out,
                         std::string *error);

    /** The compiled-in coefficient artifact (coeffs_builtin.cc).
     *  Panics if the embedded JSON fails to parse — that is a build
     *  defect, not an input error. */
    static const ProxyModel &builtin();

  private:
    std::map<std::string, std::vector<double>> families_;
};

/** One calibration observation: features at a traced shape plus the
 *  exact static-scheduler cycles for the same trace. */
struct CalibrationSample
{
    std::string family; ///< Tunable-kernel name.
    std::vector<double> basis;
    double exactCycles = 0;
    /// Relative emphasis in the squared-loss (1 = normal). The
    /// calibrator raises this for base-knob size-sweep samples: the
    /// ±15% contract is evaluated on exactly that curve, while knob
    /// variations only need to rank.
    double weight = 1;
};

/**
 * Ridge-regress per-family weights (plus the pooled "default" family)
 * of exactCycles on the feature basis. Normal equations with column
 * scaling and partial-pivot elimination — deterministic, no external
 * solver. `ridgeLambda` is relative to the scaled Gram diagonal.
 */
ProxyModel fitProxyModel(const std::vector<CalibrationSample> &samples,
                         double ridgeLambda = 1e-3);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_PREDICT_PROXY_H
