#include "cuda/simt.h"

#include <algorithm>

#include "common/logging.h"

namespace vespera::cuda {

SimtModel::SimtModel(const hw::DeviceSpec &spec)
    : spec_(spec), hbm_(spec)
{
    vassert(spec.kind == DeviceKind::A100,
            "SimtModel models the A100 only");
}

CoalescingInfo
SimtModel::coalescing(const WarpAccessPattern &p) const
{
    vassert(p.elementBytes > 0 && p.warpSize > 0, "bad warp pattern");
    const Bytes sector = spec_.minAccessGranularity;
    // Count the distinct sectors the warp touches (lanes access
    // monotonically increasing addresses).
    std::uint64_t sectors = 0;
    std::uint64_t prev_hi = 0;
    for (int lane = 0; lane < p.warpSize; lane++) {
        const std::uint64_t lo = lane * p.strideBytes / sector;
        const std::uint64_t hi =
            (lane * p.strideBytes + p.elementBytes - 1) / sector;
        if (lane == 0 || lo > prev_hi)
            sectors += hi - lo + 1;
        else if (hi > prev_hi)
            sectors += hi - prev_hi;
        prev_hi = std::max(prev_hi, hi);
    }

    CoalescingInfo info;
    info.sectorsPerWarp = static_cast<int>(sectors);
    info.efficiency =
        static_cast<double>(p.elementBytes) * p.warpSize /
        (static_cast<double>(sectors) * sector);
    return info;
}

KernelCost
SimtModel::stridedSweep(const WarpAccessPattern &pattern,
                        std::uint64_t num_elements) const
{
    vassert(num_elements > 0, "empty sweep");
    const CoalescingInfo info = coalescing(pattern);
    const double useful =
        static_cast<double>(pattern.elementBytes) * num_elements;
    const double moved = useful / info.efficiency;

    KernelCost cost;
    cost.memoryTime = hbm_.streamTime(static_cast<Bytes>(moved));
    cost.time = cost.memoryTime + spec_.launchOverhead;
    cost.hbmUtilization = useful / (cost.time * spec_.hbmBandwidth);
    return cost;
}

KernelCost
SimtModel::streamKernel(const StreamKernelDesc &desc, DataType dt) const
{
    vassert(desc.numElements > 0, "empty stream kernel");
    vassert(desc.bytesPerElement >= 0 && desc.flopsPerElement >= 0,
            "negative stream-kernel intensity");

    const double bytes =
        desc.bytesPerElement * static_cast<double>(desc.numElements);
    const double flops =
        desc.flopsPerElement * static_cast<double>(desc.numElements);

    // Non-FMA instructions occupy a full issue slot for one flop, so
    // they top out at half of the FMA-quoted peak.
    const double peak = spec_.vectorPeak(dt) * (desc.usesFma ? 1.0 : 0.5);

    KernelCost cost;
    cost.memoryTime = hbm_.streamTime(static_cast<Bytes>(bytes));
    cost.computeTime = flops / (peak * issueEfficiency_);
    cost.time = std::max(cost.memoryTime, cost.computeTime) +
                spec_.launchOverhead;
    cost.flops = flops;
    cost.achievedFlopsPerSec = flops / cost.time;
    cost.hbmUtilization = bytes / (cost.time * spec_.hbmBandwidth);
    return cost;
}

KernelCost
SimtModel::gatherScatter(Bytes access_size, std::uint64_t num_accesses,
                         bool write, double occupancy_warps) const
{
    vassert(access_size > 0 && num_accesses > 0,
            "empty gather/scatter");
    vassert(occupancy_warps > 0, "gather/scatter needs occupancy");
    mem::RandomAccessWorkload w;
    w.accessSize = access_size;
    w.numAccesses = num_accesses;
    w.concurrency = occupancy_warps;
    w.write = write;
    mem::RandomAccessResult r = hbm_.randomAccess(w);

    KernelCost cost;
    cost.memoryTime = r.time;
    cost.time = r.time + spec_.launchOverhead;
    cost.hbmUtilization = static_cast<double>(r.usefulBytes) /
                          (cost.time * spec_.hbmBandwidth);
    return cost;
}

} // namespace vespera::cuda
