/**
 * @file
 * Simplified A100 SIMT kernel cost model.
 *
 * The paper's A100-side microbenchmarks (CUDA STREAM variants, vector
 * gather/scatter, FBGEMM-style embedding kernels) are costed with this
 * model: massive multithreading hides latency, warp-coalesced accesses
 * move 32 B sectors, and the SIMD datapath executes FMA (2 flops) or
 * single-op (1 flop) instructions per lane per cycle.
 */

#ifndef VESPERA_CUDA_SIMT_H
#define VESPERA_CUDA_SIMT_H

#include <cstdint>

#include "hw/device_spec.h"
#include "mem/hbm.h"

namespace vespera::cuda {

/** Outcome of costing one CUDA kernel. */
struct KernelCost
{
    Seconds time = 0;
    Seconds computeTime = 0;
    Seconds memoryTime = 0;
    Flops flops = 0;
    double achievedFlopsPerSec = 0;
    double hbmUtilization = 0;

    bool memoryBound() const { return memoryTime > computeTime; }
};

/** A streaming element-wise kernel (STREAM ADD/SCALE/TRIAD family). */
struct StreamKernelDesc
{
    std::uint64_t numElements = 0;
    /// Global bytes moved per element (reads + writes).
    double bytesPerElement = 0;
    /// Useful flops per element.
    double flopsPerElement = 0;
    /// True if per-lane instructions are FMAs (2 flops/lane/cycle);
    /// false for single-op adds/muls, which reach only half of the
    /// FMA-quoted peak (paper Figure 8(d,e,f): 50% saturation).
    bool usesFma = false;
};

/**
 * One warp's memory access shape: lane i touches
 * [base + i*strideBytes, +elementBytes).
 */
struct WarpAccessPattern
{
    Bytes elementBytes = 4;
    Bytes strideBytes = 4;
    int warpSize = 32;
};

/** Outcome of coalescing a warp's accesses into sectors. */
struct CoalescingInfo
{
    /// Distinct 32 B sectors the warp's request touches.
    int sectorsPerWarp = 0;
    /// Useful bytes / sector bytes moved.
    double efficiency = 0;
};

/** A100 SIMT cost model. */
class SimtModel
{
  public:
    explicit SimtModel(const hw::DeviceSpec &spec = hw::a100Spec());

    /**
     * Warp-wide memory coalescing (Section 2.2: one of the SIMT
     * microarchitectural supports Gaudi's single-threaded model does
     * not need or have): contiguous lane accesses merge into few
     * 32 B sectors; strided ones shatter into one sector per lane.
     */
    CoalescingInfo coalescing(const WarpAccessPattern &pattern) const;

    /**
     * Cost a strided global access sweep: `numElements` elements of
     * `elementBytes`, consecutive lanes `strideBytes` apart. The
     * memory time scales with the sectors actually moved.
     */
    KernelCost stridedSweep(const WarpAccessPattern &pattern,
                            std::uint64_t num_elements) const;

    /** Cost a streaming element-wise kernel. */
    KernelCost streamKernel(const StreamKernelDesc &desc,
                            DataType dt) const;

    /**
     * Cost a vector gather (or scatter) of `numAccesses` random
     * accesses of `accessSize` useful bytes each. `occupancyWarps` is
     * the number of concurrently resident warps issuing accesses.
     */
    KernelCost gatherScatter(Bytes access_size,
                             std::uint64_t num_accesses, bool write,
                             double occupancy_warps = 1024) const;

    const mem::HbmModel &hbm() const { return hbm_; }
    const hw::DeviceSpec &spec() const { return spec_; }

  private:
    const hw::DeviceSpec &spec_;
    mem::HbmModel hbm_;

    /// Sustained fraction of peak vector issue bandwidth.
    static constexpr double issueEfficiency_ = 0.98;
};

} // namespace vespera::cuda

#endif // VESPERA_CUDA_SIMT_H
