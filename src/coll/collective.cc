#include "coll/collective.h"

#include <algorithm>

#include "common/logging.h"

namespace vespera::coll {

const char *
collectiveName(CollectiveOp op)
{
    switch (op) {
      case CollectiveOp::AllReduce:
        return "AllReduce";
      case CollectiveOp::AllGather:
        return "AllGather";
      case CollectiveOp::ReduceScatter:
        return "ReduceScatter";
      case CollectiveOp::AllToAll:
        return "AllToAll";
      case CollectiveOp::Reduce:
        return "Reduce";
      case CollectiveOp::Broadcast:
        return "Broadcast";
    }
    return "?";
}

CollectiveModel::CollectiveModel(const net::FabricSpec &fabric,
                                 Backend backend)
    : fabric_(fabric), backend_(backend)
{
}

CollectiveModel
CollectiveModel::hcclOnGaudi2()
{
    return {net::FabricSpec::hlsGaudi2(), Backend::Hccl};
}

CollectiveModel
CollectiveModel::ncclOnDgxA100()
{
    return {net::FabricSpec::dgxA100(), Backend::Nccl};
}

double
CollectiveModel::busFactor(CollectiveOp op, int n)
{
    // nccl-tests PERFORMANCE.md: busBW = algBW x factor, normalizing
    // each collective's traffic so busBW is comparable to link speed.
    switch (op) {
      case CollectiveOp::AllReduce:
        return 2.0 * (n - 1) / n;
      case CollectiveOp::AllGather:
      case CollectiveOp::ReduceScatter:
      case CollectiveOp::AllToAll:
        return static_cast<double>(n - 1) / n;
      case CollectiveOp::Reduce:
      case CollectiveOp::Broadcast:
        return 1.0;
    }
    vpanic("unknown collective");
}

double
CollectiveModel::backendEfficiency(CollectiveOp op) const
{
    // Sustained fraction of raw link bandwidth each library achieves at
    // large message sizes, calibrated to Figure 10's 32 MB points:
    // HCCL's statically-scheduled direct algorithms run its RoCE links
    // hot; NCCL's ring protocols over NVSwitch land lower — except
    // AllToAll, where the crossbar switch is the natural fit and the
    // P2P fabric must serialize pairwise exchanges on 3-link bundles.
    switch (backend_) {
      case Backend::Hccl:
        switch (op) {
          case CollectiveOp::AllReduce:
          case CollectiveOp::AllGather:
          case CollectiveOp::ReduceScatter:
            return 0.95;
          case CollectiveOp::AllToAll:
            return 0.70;
          case CollectiveOp::Reduce:
          case CollectiveOp::Broadcast:
            return 0.92;
        }
        break;
      case Backend::Nccl:
        switch (op) {
          case CollectiveOp::AllReduce:
            return 0.78;
          case CollectiveOp::AllGather:
          case CollectiveOp::ReduceScatter:
            return 0.80;
          case CollectiveOp::AllToAll:
            return 0.88;
          case CollectiveOp::Reduce:
            return 0.75;
          case CollectiveOp::Broadcast:
            return 0.78;
        }
        break;
    }
    vpanic("unknown backend/op");
}

CollectiveResult
CollectiveModel::run(CollectiveOp op, Bytes bytes, int num_devices) const
{
    vassert(bytes > 0, "empty collective");
    vassert(num_devices >= 2 && num_devices <= fabric_.maxDevices,
            "num_devices %d out of range", num_devices);

    const double factor = busFactor(op, num_devices);
    const BytesPerSec inj = fabric_.injectionBandwidth(num_devices);
    const double eff = backendEfficiency(op);

    // Latency term: direct P2P algorithms complete in a constant number
    // of rounds; ring algorithms take O(n) steps.
    double steps;
    Seconds sw_overhead;
    switch (backend_) {
      case Backend::Hccl:
        steps = op == CollectiveOp::AllReduce ? 2.0 : 1.0;
        sw_overhead = 12e-6;
        break;
      case Backend::Nccl:
        steps = op == CollectiveOp::AllReduce
                    ? 2.0 * (num_devices - 1)
                    : static_cast<double>(num_devices - 1);
        sw_overhead = 8e-6;
        break;
      default:
        vpanic("unknown backend");
    }

    const Seconds latency = sw_overhead + steps * fabric_.linkLatency;
    const Seconds data = static_cast<double>(bytes) * factor / (inj * eff);

    CollectiveResult r;
    r.time = latency + data;
    r.algoBandwidth = static_cast<double>(bytes) / r.time;
    r.busBandwidth = r.algoBandwidth * factor;
    r.busBandwidthUtilization = r.busBandwidth / fabric_.perDeviceBandwidth;
    return r;
}

} // namespace vespera::coll
