/**
 * @file
 * Collective-communication models (the HCCL / NCCL substitutes used for
 * Figure 10 and for tensor-parallel LLM serving).
 *
 * Bus bandwidth follows the nccl-tests accounting: busBW = algBW x a
 * per-collective factor that normalizes for the traffic each algorithm
 * must move, so busBW is directly comparable to link bandwidth.
 */

#ifndef VESPERA_COLL_COLLECTIVE_H
#define VESPERA_COLL_COLLECTIVE_H

#include <string>

#include "net/topology.h"

namespace vespera::coll {

/** The six collectives the paper characterizes (Figure 10). */
enum class CollectiveOp {
    AllReduce,
    AllGather,
    ReduceScatter,
    AllToAll,
    Reduce,
    Broadcast,
};

constexpr int numCollectiveOps = 6;

/** Display name. */
const char *collectiveName(CollectiveOp op);

/** Outcome of one collective. */
struct CollectiveResult
{
    Seconds time = 0;
    BytesPerSec algoBandwidth = 0; ///< size / time.
    BytesPerSec busBandwidth = 0;  ///< algBW x collective factor.
    /// busBandwidth / per-device injection cap (the paper's y-axis).
    double busBandwidthUtilization = 0;
};

/**
 * Collective library model bound to one fabric. `Backend::Hccl` runs
 * direct P2P algorithms over the Gaudi fabric; `Backend::Nccl` runs
 * ring/tree algorithms over NVSwitch.
 */
class CollectiveModel
{
  public:
    enum class Backend { Hccl, Nccl };

    CollectiveModel(const net::FabricSpec &fabric, Backend backend);

    /** Per-device payload `bytes`, `numDevices` participants. */
    CollectiveResult run(CollectiveOp op, Bytes bytes,
                         int num_devices) const;

    /** nccl-tests busBW factor for the collective. */
    static double busFactor(CollectiveOp op, int num_devices);

    /** Sustained link efficiency of this backend for the collective. */
    double backendEfficiency(CollectiveOp op) const;

    Backend backend() const { return backend_; }
    const net::FabricSpec &fabric() const { return fabric_; }

    /** Convenience constructors for the two evaluated systems. */
    static CollectiveModel hcclOnGaudi2();
    static CollectiveModel ncclOnDgxA100();

  private:
    net::FabricSpec fabric_;
    Backend backend_;
};

} // namespace vespera::coll

#endif // VESPERA_COLL_COLLECTIVE_H
