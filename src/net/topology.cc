#include "net/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace vespera::net {

FabricSpec
FabricSpec::hlsGaudi2()
{
    FabricSpec f{};
    f.kind = FabricKind::PeerToPeer;
    f.maxDevices = 8;
    // 21 of 24 x 100 GbE ports for scale-up: 3 links x 12.5 GB/s per peer.
    f.perPeerBandwidth = 37.5 * GB;
    f.perDeviceBandwidth = 300 * GB; // 600 GB/s bidirectional (Table 1).
    f.linkLatency = 2.2e-6;          // RoCEv2 round through the NIC.
    return f;
}

FabricSpec
FabricSpec::dgxA100()
{
    FabricSpec f{};
    f.kind = FabricKind::Switch;
    f.maxDevices = 8;
    f.perPeerBandwidth = 0;
    f.perDeviceBandwidth = 300 * GB; // NVLink3 via NVSwitch.
    f.linkLatency = 1.3e-6;
    return f;
}

BytesPerSec
FabricSpec::injectionBandwidth(int participants) const
{
    vassert(participants >= 2 && participants <= maxDevices,
            "participants %d out of range (2..%d)", participants,
            maxDevices);
    switch (kind) {
      case FabricKind::PeerToPeer:
        // Only the links toward participating peers carry traffic.
        return std::min(perPeerBandwidth * (participants - 1),
                        perDeviceBandwidth);
      case FabricKind::Switch:
        // The switch lets every device inject at full rate always.
        return perDeviceBandwidth;
    }
    vpanic("unknown fabric kind");
}

Seconds
p2pTransferTime(const FabricSpec &fabric, Bytes bytes)
{
    const BytesPerSec bw = fabric.kind == FabricKind::PeerToPeer
                               ? fabric.perPeerBandwidth
                               : fabric.perDeviceBandwidth;
    return fabric.linkLatency + static_cast<double>(bytes) / bw;
}

} // namespace vespera::net
