/**
 * @file
 * Intra-node interconnect fabric models.
 *
 * The paper's communication analysis (Sections 2.1 and 3.4) hinges on a
 * single topological difference: HLS-Gaudi-2 wires every pair of the
 * eight Gaudi-2 chips with three dedicated 100 GbE RoCE links (21 of 24
 * ports), so the bandwidth usable by a collective scales with the
 * number of participating devices; DGX A100 routes all traffic through
 * NVSwitch, so each GPU always gets its full NVLink bandwidth
 * regardless of participant count.
 */

#ifndef VESPERA_NET_TOPOLOGY_H
#define VESPERA_NET_TOPOLOGY_H

#include "common/types.h"
#include "common/units.h"

namespace vespera::net {

/** Fabric style. */
enum class FabricKind {
    PeerToPeer, ///< Direct per-pair links (HLS-Gaudi-2 RoCE).
    Switch,     ///< Full-crossbar switch (DGX A100 NVSwitch).
};

/** Static description of one server fabric. */
struct FabricSpec
{
    FabricKind kind;
    int maxDevices;
    /// P2P: unidirectional bandwidth of one device-pair bundle
    /// (3 x 100 GbE = 37.5 GB/s). Unused for Switch fabrics.
    BytesPerSec perPeerBandwidth;
    /// Per-device unidirectional injection cap (300 GB/s both systems).
    BytesPerSec perDeviceBandwidth;
    /// Per-message link latency.
    Seconds linkLatency;

    /**
     * Unidirectional bandwidth one device can use when `participants`
     * devices take part in a collective.
     */
    BytesPerSec injectionBandwidth(int participants) const;

    /** The HLS-Gaudi-2 RoCE point-to-point fabric. */
    static FabricSpec hlsGaudi2();

    /** The DGX A100 NVSwitch fabric. */
    static FabricSpec dgxA100();
};

/** Time to move `bytes` point-to-point between two devices. */
Seconds p2pTransferTime(const FabricSpec &fabric, Bytes bytes);

} // namespace vespera::net

#endif // VESPERA_NET_TOPOLOGY_H
