#include "runtime/pool.h"

#include <algorithm>
#include <chrono>

#include "obs/counters.h"

namespace vespera::runtime {

namespace {

/** Pool telemetry (host-side; excluded from metrics JSON). */
struct PoolCounters
{
    obs::Counter &tasks;
    obs::Counter &steals;
    obs::Counter &batches;
    obs::Counter &busySeconds;

    static PoolCounters &
    instance()
    {
        auto &reg = obs::CounterRegistry::instance();
        static PoolCounters c{reg.counter("runtime.tasks"),
                              reg.counter("runtime.steals"),
                              reg.counter("runtime.batches"),
                              reg.counter("runtime.busy_seconds")};
        return c;
    }
};

std::unique_ptr<Pool> &
globalSlot()
{
    static std::unique_ptr<Pool> pool = std::make_unique<Pool>(1);
    return pool;
}

} // namespace

Pool::Pool(int threads) : threads_(std::max(1, threads))
{
    // Touch the counters so the registry names exist at any thread
    // count — a metrics snapshot must list the same keys whether or
    // not the pool ever went parallel.
    PoolCounters::instance();
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 0; w < threads_ - 1; w++)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

Pool::~Pool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

Pool &
Pool::global()
{
    return *globalSlot();
}

void
Pool::setGlobalThreads(int threads)
{
    auto &slot = globalSlot();
    const int want = std::max(1, threads);
    if (slot->threads() == want)
        return;
    slot = std::make_unique<Pool>(want);
}

void
Pool::run(std::size_t count,
          const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    if (threads_ == 1 || count == 1) {
        // Serial degenerate case: same all-indices-run,
        // lowest-index-exception semantics as the parallel path.
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; i++) {
            try {
                body(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->body = &body;
    batch->count = count;
    const auto participants = static_cast<std::size_t>(threads_);
    const std::size_t per = (count + participants - 1) / participants;
    batch->chunks = std::make_unique<Batch::Chunk[]>(participants);
    batch->nchunks = participants;
    for (std::size_t c = 0; c < participants; c++) {
        batch->chunks[c].next.store(std::min(c * per, count),
                                    std::memory_order_relaxed);
        batch->chunks[c].end = std::min((c + 1) * per, count);
    }
    PoolCounters::instance().batches.add();

    {
        std::lock_guard<std::mutex> lock(mu_);
        active_.push_back(batch);
    }
    work_.notify_all();

    participate(*batch, 0);

    {
        std::unique_lock<std::mutex> lock(batch->mu);
        batch->joined.wait(lock, [&] {
            return batch->done.load(std::memory_order_acquire) == count;
        });
    }
    delist(*batch);
    if (batch->error)
        std::rethrow_exception(batch->error);
}

void
Pool::participate(Batch &batch, std::size_t home)
{
    PoolCounters &counters = PoolCounters::instance();
    const std::size_t nchunks = batch.nchunks;
    home %= nchunks;
    for (std::size_t off = 0; off < nchunks; off++) {
        Batch::Chunk &chunk = batch.chunks[(home + off) % nchunks];
        while (true) {
            const std::size_t i =
                chunk.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= chunk.end)
                break;
            if (off != 0)
                counters.steals.add();
            runIndex(batch, i);
        }
    }
    // Leaving the loop means every chunk's cursor is exhausted: all
    // indices are claimed (though stragglers may still be executing).
    // Take the batch off the active list so idle workers sleep instead
    // of rediscovering it.
    delist(batch);
}

void
Pool::runIndex(Batch &batch, std::size_t index)
{
    PoolCounters &counters = PoolCounters::instance();
    counters.tasks.add();
    const auto begin = std::chrono::steady_clock::now();
    try {
        (*batch.body)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lock(batch.mu);
        if (index < batch.errorIndex) {
            batch.errorIndex = index;
            batch.error = std::current_exception();
        }
    }
    counters.busySeconds.add(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count());

    const std::size_t done =
        batch.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == batch.count) {
        // Lock-then-notify so the joiner cannot check its predicate
        // between our fetch_add and notify and then sleep forever.
        std::lock_guard<std::mutex> lock(batch.mu);
        batch.joined.notify_all();
    }
}

void
Pool::delist(Batch &batch)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!batch.listed)
        return;
    batch.listed = false;
    for (std::size_t b = 0; b < active_.size(); b++) {
        if (active_[b].get() == &batch) {
            active_.erase(active_.begin() +
                          static_cast<std::ptrdiff_t>(b));
            break;
        }
    }
}

void
Pool::workerLoop(int worker_index)
{
    while (true) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_.wait(lock,
                       [&] { return stop_ || !active_.empty(); });
            if (stop_)
                return;
            // Newest batch first: nested batches are submitted last
            // and their submitter is blocked inside an outer task, so
            // they are the critical path.
            batch = active_.back();
        }
        participate(*batch, static_cast<std::size_t>(worker_index) + 1);
    }
}

} // namespace vespera::runtime
