/**
 * @file
 * Work-stealing thread pool for the simulation runtime.
 *
 * The simulator's hot loops are embarrassingly parallel at three
 * levels — bench sweep points, per-TPC grid slices, and the serving
 * engine's step-cost evaluations — so the pool is built for coarse
 * fork/join batches, not fine-grained task graphs:
 *
 *  - `run(count, body)` executes body(0..count-1) across the workers
 *    and the calling thread, blocking until all complete.
 *  - Each batch is split into one index chunk per participant; a
 *    participant drains its own chunk through an atomic cursor, then
 *    *steals* from the other chunks, so uneven point costs (a 4 B
 *    granularity STREAM point costs ~500x a 2 KiB one) still balance.
 *  - Nesting is safe: a body may call run() again. The nested caller
 *    participates in its own batch, so progress never depends on a
 *    free worker and nested parallel_for cannot deadlock.
 *
 * Determinism is NOT this layer's job: which thread runs which index
 * is scheduling-dependent. The ordered layer above
 * (runtime/parallel.h) captures per-index side effects and replays
 * them in index order; see docs/runtime.md for the contract.
 *
 * Telemetry: `runtime.tasks`, `runtime.steals`, `runtime.batches`,
 * and `runtime.busy_seconds` counters (host-side; excluded from the
 * metrics JSON document, which must stay thread-count-invariant).
 */

#ifndef VESPERA_RUNTIME_POOL_H
#define VESPERA_RUNTIME_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vespera::runtime {

/** Fork/join work-stealing pool. */
class Pool
{
  public:
    /**
     * @param threads Total parallelism including the calling thread:
     *        `threads - 1` workers are spawned. 1 = fully serial (no
     *        workers, run() degenerates to a plain loop).
     */
    explicit Pool(int threads = 1);
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /**
     * The process-wide pool used by parallel_for / SweepRunner / the
     * dispatcher and engine. Starts at 1 thread (serial) until
     * setGlobalThreads is called (bench `--threads N`).
     */
    static Pool &global();

    /**
     * Resize the process-wide pool. Must not be called while parallel
     * work is in flight. `threads < 1` is clamped to 1.
     */
    static void setGlobalThreads(int threads);

    int threads() const { return threads_; }

    /**
     * Execute body(i) for every i in [0, count), blocking until all
     * complete. The calling thread participates. If any body throws,
     * the remaining indices still run and the exception thrown for the
     * lowest index is rethrown after the join (deterministic choice).
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &body);

  private:
    /** One fork/join batch: per-participant index chunks + a cursor. */
    struct Batch
    {
        /// One claimed-index cursor per chunk; `next` advances through
        /// [base, end).
        struct Chunk
        {
            std::atomic<std::size_t> next{0};
            std::size_t end = 0;
        };

        const std::function<void(std::size_t)> *body = nullptr;
        std::unique_ptr<Chunk[]> chunks; ///< Atomics: not movable, so
                                         ///< a flat array, not vector.
        std::size_t nchunks = 0;
        std::size_t count = 0;
        std::atomic<std::size_t> done{0};
        bool listed = true; ///< Still on the pool's active list
                            ///< (guarded by the pool mutex).

        std::mutex mu;
        std::condition_variable joined;

        /// Lowest-index exception (mu-guarded).
        std::exception_ptr error;
        std::size_t errorIndex = SIZE_MAX;
    };

    void workerLoop(int worker_index);

    /** Drain `batch` starting from chunk `home`; returns when every
     *  index is claimed (not necessarily finished). */
    void participate(Batch &batch, std::size_t home);

    void runIndex(Batch &batch, std::size_t index);

    /** Remove the batch from the active list (idempotent). */
    void delist(Batch &batch);

    const int threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable work_;
    std::vector<std::shared_ptr<Batch>> active_;
    bool stop_ = false;
};

} // namespace vespera::runtime

#endif // VESPERA_RUNTIME_POOL_H
