/**
 * @file
 * SweepRunner: the bench-facing adapter over parallel_map.
 *
 * Every bench binary is a set of sweeps — "for each (granularity, op)
 * evaluate the model and print a row". SweepRunner fans the points out
 * across the global pool and hands back per-point results in point
 * order, so the bench assembles tables and accumulators exactly as the
 * serial loop did (stdout and `--metrics` JSON are unchanged by
 * `--threads`; see docs/runtime.md for the adoption recipe).
 *
 * Each sweep records a host trace span ("sweep:<name>", one per task
 * batch) and bumps `runtime.sweep_points`, so a `--trace` of a
 * parallel bench shows where the wall time went.
 */

#ifndef VESPERA_RUNTIME_SWEEP_H
#define VESPERA_RUNTIME_SWEEP_H

#include <string>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/profiler.h"
#include "runtime/parallel.h"

namespace vespera::runtime {

/** Fans a bench's sweep points out across the global pool. */
class SweepRunner
{
  public:
    /** @param name Sweep label for trace spans ("fig8a.granularity"). */
    explicit SweepRunner(std::string name) : name_(std::move(name)) {}

    /**
     * Evaluate fn over every point; results come back in point order.
     * fn must be safe to call concurrently (points share no mutable
     * state — give each point its own Rng, tensors, accumulators).
     */
    template <typename Point, typename Fn>
    auto
    map(const std::vector<Point> &points, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const Point &>>
    {
        obs::ScopedSpan span("sweep:" + name_, "sweep");
        obs::CounterRegistry::instance()
            .counter("runtime.sweep_points")
            .add(static_cast<double>(points.size()));
        return parallel_map(points.size(), [&](std::size_t i) {
            return fn(points[i]);
        });
    }

    /** Index-based variant for sweeps without a natural point vector. */
    template <typename Fn>
    auto
    mapIndex(std::size_t count, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        obs::ScopedSpan span("sweep:" + name_, "sweep");
        obs::CounterRegistry::instance()
            .counter("runtime.sweep_points")
            .add(static_cast<double>(count));
        return parallel_map(count, std::forward<Fn>(fn));
    }

  private:
    std::string name_;
};

} // namespace vespera::runtime

#endif // VESPERA_RUNTIME_SWEEP_H
