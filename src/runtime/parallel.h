/**
 * @file
 * Deterministic fork/join primitives: parallel_for / parallel_map.
 *
 * Both run their body across the global runtime::Pool with a *stable,
 * index-ordered reduction* of every observable side effect:
 *
 *  - each index executes under an obs::ScopedCapture, so its
 *    Counter/RateMeter updates land in a private, ordered log;
 *  - after the join, the logs replay in index order — the exact
 *    sequence a serial loop would have produced.
 *
 * Result: counter values, peaks, update counts — and therefore the
 * `--metrics` JSON document — are bit-identical at any thread count.
 * parallel_map additionally writes each result into its index slot,
 * so the returned vector is order-stable by construction.
 *
 * Nesting composes: a body may itself call parallel_for. The nested
 * replay happens inside the enclosing capture, appending to the outer
 * log in the right position.
 *
 * Error semantics: if any index throws, every index still runs, the
 * side-effect logs are discarded (a failed region leaves no partial
 * counter state), and the lowest-index exception is rethrown.
 */

#ifndef VESPERA_RUNTIME_PARALLEL_H
#define VESPERA_RUNTIME_PARALLEL_H

#include <type_traits>
#include <vector>

#include "obs/capture.h"
#include "obs/profiler.h"
#include "runtime/pool.h"

namespace vespera::runtime {

/**
 * Run fn(i) for i in [0, count) on the global pool with index-ordered
 * side-effect replay. Serial (1-thread pool) executions skip the
 * capture machinery entirely — an inline loop already applies effects
 * in index order, which is precisely the contract.
 */
template <typename Fn>
void
parallel_for(std::size_t count, Fn &&fn)
{
    Pool &pool = Pool::global();
    if (pool.threads() == 1 || count <= 1) {
        for (std::size_t i = 0; i < count; i++)
            fn(i);
        return;
    }

    obs::ScopedSpan span("runtime.parallel_for", "runtime");
    std::vector<obs::SideEffectLog> logs(count);
    pool.run(count, [&](std::size_t i) {
        obs::ScopedCapture capture(logs[i]);
        fn(i);
    });
    // Only reached when no index threw (Pool::run rethrows first).
    for (obs::SideEffectLog &log : logs)
        log.replay();
}

/**
 * parallel_for that collects fn(i) into a vector by index. The result
 * type must be default-constructible (rows, report structs, PODs).
 */
template <typename Fn>
auto
parallel_map(std::size_t count, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    static_assert(std::is_default_constructible_v<R>,
                  "parallel_map results are written into preallocated "
                  "index slots");
    std::vector<R> out(count);
    parallel_for(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace vespera::runtime

#endif // VESPERA_RUNTIME_PARALLEL_H
