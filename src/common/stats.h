/**
 * @file
 * Lightweight statistics accumulators used by models, kernels, and the
 * serving engine to report utilization, latency distributions, and
 * throughput aggregates.
 */

#ifndef VESPERA_COMMON_STATS_H
#define VESPERA_COMMON_STATS_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vespera {

/** Streaming scalar accumulator: count / sum / min / max / mean. */
class Accumulator
{
  public:
    void
    add(double v)
    {
        count_++;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample collector with percentile queries. Retains all samples; intended
 * for request-level latency metrics (TTFT, TPOT), not per-cycle events.
 */
class Samples
{
  public:
    void add(double v) { values_.push_back(v); }

    std::size_t count() const { return values_.size(); }

    double
    mean() const
    {
        if (values_.empty())
            return 0.0;
        double s = 0.0;
        for (double v : values_)
            s += v;
        return s / values_.size();
    }

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

    void clear() { values_.clear(); }

    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> values_;
};

/** Geometric mean over a sequence of strictly positive values. */
double geoMean(const std::vector<double> &values);

} // namespace vespera

#endif // VESPERA_COMMON_STATS_H
