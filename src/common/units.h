/**
 * @file
 * Unit constants and small conversion helpers.
 */

#ifndef VESPERA_COMMON_UNITS_H
#define VESPERA_COMMON_UNITS_H

#include <cstdint>

#include "common/types.h"

namespace vespera {

constexpr Bytes KiB = 1024ull;
constexpr Bytes MiB = 1024ull * KiB;
constexpr Bytes GiB = 1024ull * MiB;

/** Decimal (SI) byte units, used for bandwidth figures. */
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

constexpr double kHz = 1e3;
constexpr double MHz = 1e6;
constexpr double GHz = 1e9;

constexpr double GFLOPS = 1e9;
constexpr double TFLOPS = 1e12;

constexpr Seconds usec = 1e-6;
constexpr Seconds msec = 1e-3;

/** Convert a cycle count at the given frequency to seconds. */
constexpr Seconds
cyclesToSeconds(double cycles, Hertz freq)
{
    return cycles / freq;
}

/** Convert seconds at the given frequency to (fractional) cycles. */
constexpr double
secondsToCycles(Seconds s, Hertz freq)
{
    return s * freq;
}

} // namespace vespera

#endif // VESPERA_COMMON_UNITS_H
