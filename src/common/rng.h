/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All stochastic inputs (embedding lookup indices, request lengths, ...)
 * flow through Rng so experiments are reproducible bit-for-bit across
 * runs and platforms. The core generator is SplitMix64/xoshiro256**,
 * which is seed-stable regardless of libstdc++ version.
 */

#ifndef VESPERA_COMMON_RNG_H
#define VESPERA_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace vespera {

/** Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into four state words.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload synthesis (negligible modulo bias for our bounds).
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal draw (Box-Muller, one value per call). */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Log-normal draw with the given parameters of the underlying normal. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * normal());
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace vespera

#endif // VESPERA_COMMON_RNG_H
