/**
 * @file
 * Aligned console table printer used by the benchmark harnesses to emit
 * the rows/series of each paper table and figure.
 */

#ifndef VESPERA_COMMON_TABLE_H
#define VESPERA_COMMON_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace vespera {

/**
 * Builds and prints a fixed-column text table. Cells are strings; helper
 * overloads format numbers. Columns are right-aligned except the first.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a pre-formatted row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double ratio, int precision = 1);
    static std::string integer(long long v);

    /**
     * Render to the given stream (default stdout). If the
     * VESPERA_CSV_DIR environment variable is set, the table is also
     * written there as table_<n>.csv (n increments per process), so
     * every bench emits plot-ready data without code changes.
     */
    void print(std::FILE *out = stdout) const;

    /** Write the table as CSV; returns false on I/O failure. */
    bool writeCsv(const std::string &path) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print an underlined section heading for bench output. */
void printHeading(const std::string &title, std::FILE *out = stdout);

} // namespace vespera

#endif // VESPERA_COMMON_TABLE_H
