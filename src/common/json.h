/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Exists so the telemetry exporters (obs/export.h) can be validated by
 * round-trip tests without an external dependency, and so tools that
 * consume `vespera-metrics` documents (trajectory diffing, CI checks)
 * can parse them in-process. Supports the full JSON value grammar but
 * is tuned for small machine-generated documents, not streaming.
 */

#ifndef VESPERA_COMMON_JSON_H
#define VESPERA_COMMON_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vespera::json {

/** One JSON value (tagged union over the six JSON types). */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isBool() const { return type_ == Type::Bool; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &str() const { return string_; }
    const std::vector<Value> &array() const { return array_; }
    const std::map<std::string, Value> &object() const { return object_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /**
     * `find` across a dotted path ("counters.mme.flops"). Literal
     * keys win: keys containing dots (metrics counter names) are
     * matched before the path is split.
     */
    const Value *findPath(const std::string &dotted) const;

    /// @name Construction helpers (used by the parser and tests).
    /// @{
    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double v);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value makeObject(std::map<std::string, Value> members);
    /// @}

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<Value> array_;
    std::map<std::string, Value> object_;
};

/**
 * Parse a JSON document. Returns false (and fills `error` with a
 * byte-offset message, when non-null) on malformed input; `out` is
 * unspecified on failure.
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

/** Serialize a value back to compact JSON (round-trip counterpart). */
std::string serialize(const Value &v);

} // namespace vespera::json

#endif // VESPERA_COMMON_JSON_H
