#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace vespera::json {

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

const Value *
Value::findPath(const std::string &dotted) const
{
    // Keys may themselves contain dots (vespera-metrics counter names
    // like "mme.flops"), so prefer the literal key, then try each
    // split point left to right.
    if (const Value *direct = find(dotted))
        return direct;
    for (std::size_t dot = dotted.find('.'); dot != std::string::npos;
         dot = dotted.find('.', dot + 1)) {
        if (const Value *head = find(dotted.substr(0, dot))) {
            if (const Value *rest =
                    head->findPath(dotted.substr(dot + 1))) {
                return rest;
            }
        }
    }
    return nullptr;
}

Value
Value::makeNull()
{
    return Value();
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.type_ = Type::Number;
    v.number_ = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v.type_ = Type::Array;
    v.array_ = std::move(items);
    return v;
}

Value
Value::makeObject(std::map<std::string, Value> members)
{
    Value v;
    v.type_ = Type::Object;
    v.object_ = std::move(members);
    return v;
}

namespace {

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters");
        return true;
    }

  private:
    static constexpr int maxDepth_ = 64;

    bool
    fail(const char *what)
    {
        if (error_)
            *error_ = strfmt("%s at byte %zu", what, pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            pos_++;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("bad escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u digit");
                }
                // Basic-plane code points only; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        pos_++; // Closing quote.
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > maxDepth_)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end");
        const char c = text_[pos_];
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Value::makeNull();
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Value::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Value::makeBool(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (c == '[') {
            pos_++;
            std::vector<Value> items;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                pos_++;
                out = Value::makeArray(std::move(items));
                return true;
            }
            while (true) {
                Value v;
                skipWs();
                if (!parseValue(v, depth + 1))
                    return false;
                items.push_back(std::move(v));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (text_[pos_] == ']') {
                    pos_++;
                    out = Value::makeArray(std::move(items));
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            pos_++;
            std::map<std::string, Value> members;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                pos_++;
                out = Value::makeObject(std::move(members));
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (pos_ >= text_.size() || !parseString(key))
                    return fail("expected object key");
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                pos_++;
                skipWs();
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                members[key] = std::move(v);
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (text_[pos_] == '}') {
                    pos_++;
                    out = Value::makeObject(std::move(members));
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        // Number.
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start || !std::isfinite(d))
            return fail("bad number");
        pos_ += static_cast<std::size_t>(end - start);
        out = Value::makeNumber(d);
        return true;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

void
serializeString(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
serializeValue(const Value &v, std::string &out)
{
    switch (v.type()) {
      case Value::Type::Null:
        out += "null";
        return;
      case Value::Type::Bool:
        out += v.boolean() ? "true" : "false";
        return;
      case Value::Type::Number:
        out += strfmt("%.17g", v.number());
        return;
      case Value::Type::String:
        serializeString(v.str(), out);
        return;
      case Value::Type::Array: {
        out += '[';
        bool first = true;
        for (const Value &item : v.array()) {
            if (!first)
                out += ',';
            first = false;
            serializeValue(item, out);
        }
        out += ']';
        return;
      }
      case Value::Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, member] : v.object()) {
            if (!first)
                out += ',';
            first = false;
            serializeString(key, out);
            out += ':';
            serializeValue(member, out);
        }
        out += '}';
        return;
      }
    }
}

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    return Parser(text, error).run(out);
}

std::string
serialize(const Value &v)
{
    std::string out;
    serializeValue(v, out);
    return out;
}

} // namespace vespera::json
