#include "common/io.h"

#include <cstdio>

namespace vespera {

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    // fclose flushes; errors the buffered fwrite deferred (ENOSPC,
    // EIO) surface here, and a bench's exit code must reflect them.
    const bool closed = std::fclose(f) == 0;
    return closed && n == content.size();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace vespera
