#include "common/table.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace vespera {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    vassert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    vassert(cells.size() == headers_.size(),
            "row has %zu cells, table has %zu columns",
            cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

std::string
Table::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

void
Table::print(std::FILE *out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); c++) {
            if (c == 0) {
                std::fprintf(out, "%-*s", static_cast<int>(widths[c]),
                             cells[c].c_str());
            } else {
                std::fprintf(out, "  %*s", static_cast<int>(widths[c]),
                             cells[c].c_str());
            }
        }
        std::fprintf(out, "\n");
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); c++)
        total += widths[c] + (c ? 2 : 0);
    std::string rule(total, '-');
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto &row : rows_)
        print_row(row);

    if (const char *dir = std::getenv("VESPERA_CSV_DIR")) {
        static int counter = 0;
        const std::string path =
            std::string(dir) + "/table_" + std::to_string(++counter) +
            ".csv";
        if (!writeCsv(path))
            vwarn("could not write %s", path.c_str());
    }
}

bool
Table::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    auto write_row = [f](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); c++) {
            // Quote cells containing separators.
            const bool quote =
                cells[c].find_first_of(",\"") != std::string::npos;
            if (quote) {
                std::string escaped;
                for (char ch : cells[c]) {
                    if (ch == '"')
                        escaped += '"';
                    escaped += ch;
                }
                std::fprintf(f, "\"%s\"%s", escaped.c_str(),
                             c + 1 < cells.size() ? "," : "");
            } else {
                std::fprintf(f, "%s%s", cells[c].c_str(),
                             c + 1 < cells.size() ? "," : "");
            }
        }
        std::fprintf(f, "\n");
    };
    write_row(headers_);
    for (const auto &row : rows_)
        write_row(row);
    std::fclose(f);
    return true;
}

void
printHeading(const std::string &title, std::FILE *out)
{
    std::fprintf(out, "\n== %s ==\n", title.c_str());
}

} // namespace vespera
