#include "common/stats.h"

#include <cmath>

#include "common/logging.h"

namespace vespera {

double
Samples::percentile(double p) const
{
    vassert(p >= 0.0 && p <= 100.0, "percentile %f out of range", p);
    if (values_.empty())
        return 0.0;
    std::vector<double> sorted(values_);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    double rank = p / 100.0 * (sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        vassert(v > 0.0, "geoMean requires positive values, got %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / values.size());
}

} // namespace vespera
