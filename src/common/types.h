/**
 * @file
 * Fundamental scalar types and data-type descriptors shared by every
 * vespera subsystem.
 */

#ifndef VESPERA_COMMON_TYPES_H
#define VESPERA_COMMON_TYPES_H

#include <cstdint>
#include <string>

namespace vespera {

/** Simulated wall-clock time, in seconds. */
using Seconds = double;

/** Bytes of data or storage. */
using Bytes = std::uint64_t;

/** Floating point operation count. */
using Flops = double;

/** Bandwidth in bytes per second. */
using BytesPerSec = double;

/** Clock frequency in Hz. */
using Hertz = double;

/** Power draw in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Processor cycle count. */
using Cycles = std::uint64_t;

/**
 * Numeric formats evaluated by the paper. The paper reports BF16 for all
 * microbenchmarks and LLM serving, and FP32 for end-to-end RecSys.
 */
enum class DataType {
    BF16,
    FP16,
    FP32,
};

/** Size in bytes of one element of the given data type. */
constexpr Bytes
dtypeSize(DataType dt)
{
    switch (dt) {
      case DataType::BF16:
      case DataType::FP16:
        return 2;
      case DataType::FP32:
        return 4;
    }
    return 0;
}

/** Human-readable name of a data type. */
constexpr const char *
dtypeName(DataType dt)
{
    switch (dt) {
      case DataType::BF16:
        return "bf16";
      case DataType::FP16:
        return "fp16";
      case DataType::FP32:
        return "fp32";
    }
    return "?";
}

/** The two device families the paper compares. */
enum class DeviceKind {
    Gaudi2,
    A100,
};

/** Human-readable device name. */
constexpr const char *
deviceName(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Gaudi2:
        return "Gaudi-2";
      case DeviceKind::A100:
        return "A100";
    }
    return "?";
}

} // namespace vespera

#endif // VESPERA_COMMON_TYPES_H
