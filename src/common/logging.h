/**
 * @file
 * Status/error reporting in the style of gem5's logging.hh.
 *
 * panic() flags internal framework bugs (aborts); fatal() flags user
 * errors such as invalid configurations (exits); warn()/inform() emit
 * non-fatal status to stderr.
 */

#ifndef VESPERA_COMMON_LOGGING_H
#define VESPERA_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace vespera {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace vespera

/** Abort on an internal invariant violation (a vespera bug). */
#define vpanic(...) \
    ::vespera::panicImpl(__FILE__, __LINE__, ::vespera::strfmt(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define vfatal(...) \
    ::vespera::fatalImpl(__FILE__, __LINE__, ::vespera::strfmt(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define vwarn(...) ::vespera::warnImpl(::vespera::strfmt(__VA_ARGS__))

/** Informational status message. */
#define vinform(...) ::vespera::informImpl(::vespera::strfmt(__VA_ARGS__))

/** Check a condition that must hold; panics with the message otherwise. */
#define vassert(cond, ...)                                                   \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::vespera::panicImpl(__FILE__, __LINE__,                         \
                std::string("assertion failed: " #cond " — ") +              \
                ::vespera::strfmt(__VA_ARGS__));                             \
        }                                                                    \
    } while (0)

#endif // VESPERA_COMMON_LOGGING_H
