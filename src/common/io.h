/**
 * @file
 * Small file I/O helpers shared by exporters, benches, and tests.
 * (Moved out of serve/tracing.h so trace and metrics writers share one
 * code path.)
 */

#ifndef VESPERA_COMMON_IO_H
#define VESPERA_COMMON_IO_H

#include <string>

namespace vespera {

/** Write a string to a file; returns false on I/O failure. */
bool writeFile(const std::string &path, const std::string &content);

/**
 * Read a whole file into `out`; returns false if the file cannot be
 * opened or read.
 */
bool readFile(const std::string &path, std::string &out);

} // namespace vespera

#endif // VESPERA_COMMON_IO_H
