/**
 * @file
 * STREAM-style non-GEMM microbenchmarks (Algorithm 1 of the paper):
 * ADD (c = a + b), SCALE (b = s * a), TRIAD (c = s * a + b).
 *
 * The Gaudi versions are real TPC-C kernels executed on the simulated
 * TPC array; the A100 versions are costed with the SIMT model. The
 * configuration exposes exactly the axes Figure 8 sweeps: data access
 * granularity, loop unrolling factor, TPC count, and an artificial
 * operational-intensity multiplier.
 */

#ifndef VESPERA_KERN_STREAM_H
#define VESPERA_KERN_STREAM_H

#include <cstdint>

#include "common/types.h"

namespace vespera::kern {

/** The three STREAM operations of Algorithm 1. */
enum class StreamOp {
    Add,   ///< c[i] = a[i] + b[i]        (1 flop, 3 arrays)
    Scale, ///< b[i] = s * a[i]           (1 flop, 2 arrays)
    Triad, ///< c[i] = s * a[i] + b[i]    (2 flops, 3 arrays)
};

const char *streamOpName(StreamOp op);

/** Workload and tuning-knob configuration. */
struct StreamConfig
{
    StreamOp op = StreamOp::Triad;
    std::uint64_t numElements = 24ull << 20; ///< Paper: 24M scalars.
    DataType dt = DataType::BF16;
    /// Data access granularity in bytes (Figure 8(a) sweeps 2..2048).
    Bytes accessBytes = 256;
    /// Manual unroll factor (Figure 8(b) sweeps this).
    int unroll = 4;
    /// Number of TPCs (Figure 8(c) weak-scales this). Ignored on A100.
    int numTpcs = 24;
    /// Extra dependent compute instructions per loop body, artificially
    /// raising operational intensity (Figure 8(d,e,f)).
    int extraComputePerVector = 0;
};

/** Outcome of one STREAM run. */
struct StreamResult
{
    Seconds time = 0;
    Flops flops = 0;
    double gflops = 0;
    /// Achieved flops / vector-engine peak for the data type.
    double vectorUtilization = 0;
    /// Useful bytes / (time x peak HBM bandwidth).
    double hbmUtilization = 0;
    /// Useful arithmetic flops per useful byte moved.
    double operationalIntensity = 0;
};

/**
 * Run the microbenchmark on the simulated Gaudi-2 TPC array.
 * Functionally executes the kernel; panics if results are wrong.
 */
StreamResult runStreamGaudi(const StreamConfig &config);

/** Cost the equivalent CUDA kernel on the A100 model. */
StreamResult runStreamA100(const StreamConfig &config);

} // namespace vespera::kern

#endif // VESPERA_KERN_STREAM_H
