#include "kern/paged_attention.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "hw/device_spec.h"

namespace vespera::kern {

namespace {

/// vLLM_base's generic per-block gather is latency-bound: each 256 B
/// granule waits most of an HBM round trip with ~1.6 requests in
/// flight per TPC (no manual unrolling at the PyTorch level).
constexpr double baseGatherInFlight = 1.6;
constexpr double baseGatherLatencyCycles = 134;

/// Zero-padded indices repeatedly hit the same physical block, so a
/// padded gather costs a fraction of a real one (partial locality).
constexpr double paddedGatherCostFactor = 0.8;

/// vLLM_opt's BlockList gather sustains this fraction of peak HBM
/// bandwidth (high-MLP flat gather of >=2 KB blocks, minus pipeline
/// slicing bubbles).
constexpr double optGatherEfficiency = 0.30;

/// The CUDA fused PagedAttention kernel reads KV once at this fraction
/// of peak bandwidth (flash-decoding style).
constexpr double a100FusedEfficiency = 0.80;

/// Effective MME/TC utilization on the small batched attention GEMMs.
constexpr double attentionGemmEfficiency = 0.35;

} // namespace

Bytes
PagedAttentionConfig::kvBytes() const
{
    return static_cast<Bytes>(batch) * seqLen * 2 * numKvHeads *
           headDim * dtypeSize(dt);
}

Flops
PagedAttentionConfig::flops() const
{
    // Per (request, q-head): QK^T is 2*seq*d, PV is 2*seq*d.
    return static_cast<double>(batch) * numQHeads * 4.0 *
           static_cast<double>(seqLen) * headDim;
}

const char *
pagedAttentionImplName(PagedAttentionImpl impl)
{
    switch (impl) {
      case PagedAttentionImpl::GaudiBase:
        return "vLLM_base (Gaudi-2)";
      case PagedAttentionImpl::GaudiOpt:
        return "vLLM_opt (Gaudi-2)";
      case PagedAttentionImpl::A100Fused:
        return "vLLM (A100)";
    }
    return "?";
}

PagedAttentionCost
runPagedAttention(const PagedAttentionConfig &config,
                  PagedAttentionImpl impl)
{
    vassert(config.batch >= 1 && config.seqLen >= 1, "bad config");
    vassert(config.paddedFraction >= 0 && config.paddedFraction < 1.0,
            "padded fraction must be in [0,1)");

    const Bytes kv = config.kvBytes();
    const double kvf = static_cast<double>(kv);
    const double pad = config.paddedFraction;
    // Total BlockTable payload including padding entries.
    const double padded_kvf = kvf / (1.0 - pad);

    PagedAttentionCost cost;
    cost.kvBytes = kv;

    switch (impl) {
      case PagedAttentionImpl::GaudiBase: {
        const auto &spec = hw::gaudi2Spec();
        // Latency-bound gather of every BlockTable entry; padded
        // entries cost a fraction (same zero block re-fetched).
        const double per_tpc_bw = 256.0 * baseGatherInFlight /
                                  baseGatherLatencyCycles *
                                  spec.vectorClock;
        const double gather_bw = per_tpc_bw * spec.numVectorCores;
        const double gather_payload =
            kvf + (padded_kvf - kvf) * paddedGatherCostFactor;
        cost.gatherTime = gather_payload / gather_bw;
        // Staging copy written out, then FusedSDPA re-reads it —
        // both at streaming bandwidth, both including padding.
        const double stream_bw =
            spec.hbmBandwidth * spec.streamEfficiency;
        const Seconds copy_write = padded_kvf / stream_bw;
        const Seconds sdpa_read = padded_kvf / stream_bw;
        cost.gemmTime =
            sdpa_read + config.flops() / (spec.matrixPeak(config.dt) *
                                          attentionGemmEfficiency);
        // Serial: gather -> copy -> SDPA; three kernel boundaries.
        cost.time = cost.gatherTime + copy_write + cost.gemmTime +
                    3 * spec.launchOverhead;
        break;
      }
      case PagedAttentionImpl::GaudiOpt: {
        const auto &spec = hw::gaudi2Spec();
        // Effectual blocks only, gathered with full MLP.
        cost.gatherTime =
            kvf / (spec.hbmBandwidth * optGatherEfficiency);
        cost.gemmTime = config.flops() / (spec.matrixPeak(config.dt) *
                                          attentionGemmEfficiency);
        // Graph compiler pipelines TPC gathers with MME batched GEMMs.
        cost.time = std::max(cost.gatherTime, cost.gemmTime) +
                    spec.launchOverhead;
        break;
      }
      case PagedAttentionImpl::A100Fused: {
        const auto &spec = hw::a100Spec();
        cost.gatherTime =
            kvf / (spec.hbmBandwidth * a100FusedEfficiency);
        cost.gemmTime = config.flops() / (spec.matrixPeak(config.dt) *
                                          attentionGemmEfficiency);
        cost.time = std::max(cost.gatherTime, cost.gemmTime) +
                    spec.launchOverhead;
        break;
      }
    }

    cost.tokensPerSec = config.batch / cost.time;
    return cost;
}

} // namespace vespera::kern
