#include "kern/gather_scatter.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "cuda/simt.h"
#include "tpc/dispatcher.h"

namespace vespera::kern {

GatherScatterResult
runGatherScatterGaudi(const GatherScatterConfig &c, Rng &rng)
{
    vassert(c.numVectors > 0 && c.vectorBytes > 0, "bad config");
    vassert(c.accessFraction > 0 && c.accessFraction <= 1.0,
            "access fraction out of (0,1]");

    const Bytes es = dtypeSize(c.dt);
    const auto lanes = static_cast<std::int64_t>(c.vectorBytes / es);
    const auto num_vectors = static_cast<std::int64_t>(c.numVectors);
    const auto num_accesses = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(c.accessFraction * num_vectors));

    tpc::Tensor array({lanes, num_vectors}, c.dt);
    array.fill([lanes](std::int64_t i) {
        return static_cast<float>((i / lanes) % 61);
    });
    // Index list, read by the kernel in 256 B chunks.
    tpc::Tensor indices({num_accesses}, DataType::FP32);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(num_accesses));
    for (auto &v : idx)
        v = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(num_vectors)));
    indices.fill([&idx](std::int64_t i) {
        return static_cast<float>(idx[static_cast<std::size_t>(i)]);
    });

    // Per-TPC accumulator output (one column per TPC).
    tpc::Tensor out({lanes, c.numTpcs}, DataType::FP32);

    const std::int64_t per_tpc =
        (num_accesses + c.numTpcs - 1) / c.numTpcs;
    const bool scatter = c.scatter;
    const int unroll = std::max(1, c.unroll);
    const int num_accs = std::max(1, c.accumulators);
    const Bytes vec_bytes = c.vectorBytes;

    tpc::Kernel kernel = [&, per_tpc, lanes, scatter, unroll, num_accs,
                          vec_bytes](tpc::TpcContext &ctx) {
        for (std::int64_t t = ctx.memberStart(1); t < ctx.memberEnd(1);
             t++) {
            const std::int64_t begin = t * per_tpc;
            const std::int64_t end =
                std::min(begin + per_tpc, num_accesses);
            if (begin >= end)
                continue;
            // Independent accumulator chains keep the reduction off the
            // critical path (4-cycle vector latency, Section 2.2).
            std::vector<tpc::Vec> accs;
            for (int q = 0; q < num_accs; q++)
                accs.push_back(ctx.v_zero(static_cast<int>(lanes)));
            constexpr std::int64_t idx_chunk = 64; // 256 B of indices.
            for (std::int64_t i = begin; i < end; i += idx_chunk) {
                // Stage a 256 B block of indices (streaming load).
                (void)ctx.v_ld_tnsr({i, 0, 0, 0, 0}, indices, 256,
                                    tpc::Access::Stream);
                const std::int64_t blk_end =
                    std::min(i + idx_chunk, end);
                for (std::int64_t j = i; j < blk_end; j += unroll) {
                    std::vector<tpc::Vec> vs;
                    for (int u = 0; u < unroll && j + u < blk_end; u++) {
                        const std::int64_t target =
                            idx[static_cast<std::size_t>(j + u)];
                        tpc::Int5 coord{0, target, 0, 0, 0};
                        if (scatter) {
                            ctx.v_st_tnsr(coord, array, accs[0],
                                          tpc::Access::Random);
                        } else {
                            vs.push_back(ctx.v_ld_tnsr(
                                coord, array, vec_bytes,
                                tpc::Access::Random));
                        }
                    }
                    for (std::size_t u = 0; u < vs.size(); u++) {
                        auto &acc = accs[u % accs.size()];
                        acc = ctx.v_add(acc, vs[u]);
                    }
                }
            }
            tpc::Vec total = accs[0];
            for (std::size_t q = 1; q < accs.size(); q++)
                total = ctx.v_add(total, accs[q]);
            // One streaming store of the accumulator per TPC.
            ctx.v_st_tnsr({0, t % c.numTpcs, 0, 0, 0}, out, total,
                          tpc::Access::Stream);
        }
    };

    static const tpc::TpcDispatcher dispatcher;
    tpc::IndexSpace space;
    space.size = {1, c.numTpcs, 1, 1, 1};
    tpc::LaunchParams params;
    params.numTpcs = c.numTpcs;
    params.vectorBytes = std::min<Bytes>(c.vectorBytes, 256);
    params.kernelName = scatter ? "scatter" : "gather";
    auto launch = dispatcher.launch(kernel, space, params);

    if (!scatter) {
        // Verify: the sum of all accumulators equals the reference sum
        // over the gathered rows (lane 0 suffices: rows are constant).
        double got = 0;
        for (int t = 0; t < c.numTpcs; t++)
            got += out.at(tpc::Int5{0, t, 0, 0, 0});
        double want = 0;
        for (std::int64_t j = 0; j < num_accesses; j++)
            want += static_cast<double>(
                idx[static_cast<std::size_t>(j)] % 61);
        vassert(std::abs(got - want) <= 1e-4 * std::max(1.0, want),
                "gather verification failed: %f != %f", got, want);
    }

    GatherScatterResult r;
    r.time = launch.time;
    r.usefulBytes =
        static_cast<Bytes>(num_accesses) * c.vectorBytes;
    r.hbmUtilization = static_cast<double>(r.usefulBytes) /
                       (r.time * hw::gaudi2Spec().hbmBandwidth);
    return r;
}

GatherScatterResult
runGatherScatterA100(const GatherScatterConfig &c)
{
    static const cuda::SimtModel model;
    const auto num_accesses = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(c.accessFraction * c.numVectors));
    auto cost =
        model.gatherScatter(c.vectorBytes, num_accesses, c.scatter);

    GatherScatterResult r;
    r.time = cost.time;
    r.usefulBytes = num_accesses * c.vectorBytes;
    r.hbmUtilization = cost.hbmUtilization;
    return r;
}

} // namespace vespera::kern
