#include "kern/vector_op.h"

#include <algorithm>

namespace vespera::kern {

VectorOpCost
vectorOpCost(const hw::DeviceSpec &spec, Bytes hbm_bytes, Flops flops,
             DataType dt, bool uses_fma, bool include_launch)
{
    VectorOpCost c;
    c.flops = flops;
    c.hbmBytes = hbm_bytes;
    c.memoryTime = static_cast<double>(hbm_bytes) /
                   (spec.hbmBandwidth * spec.streamEfficiency);
    const double peak = spec.vectorPeak(dt) * (uses_fma ? 1.0 : 0.5);
    c.computeTime = flops / peak;
    c.time = std::max(c.memoryTime, c.computeTime);
    if (include_launch)
        c.time += spec.launchOverhead;
    return c;
}

} // namespace vespera::kern
