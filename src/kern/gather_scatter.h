/**
 * @file
 * GUPS-inspired vector gather/scatter microbenchmarks (Section 3.3,
 * Figure 9): read (gather) or write (scatter) vectors at random
 * locations of a large 2D vector array.
 */

#ifndef VESPERA_KERN_GATHER_SCATTER_H
#define VESPERA_KERN_GATHER_SCATTER_H

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace vespera::kern {

/** Workload configuration. */
struct GatherScatterConfig
{
    /// Vectors in the 2D array (paper: 4M; tests use fewer).
    std::uint64_t numVectors = 4ull << 20;
    /// Vector size in bytes (Figure 9 x-groups: 16..2048).
    Bytes vectorBytes = 256;
    /// Fraction of the vectors accessed, in random order (Figure 9
    /// x-axis within each group).
    double accessFraction = 1.0;
    /// Scatter (write) instead of gather (read).
    bool scatter = false;
    DataType dt = DataType::BF16;
    /// Unroll factor of the TPC kernel (memory-level parallelism).
    /// Random-access kernels need deeper unrolling than streaming ones
    /// to cover the full HBM round-trip latency.
    int unroll = 16;
    /// Independent accumulator chains (breaks the reduction's
    /// 4-cycle-latency dependency chain).
    int accumulators = 4;
    int numTpcs = 24;
};

/** Outcome. */
struct GatherScatterResult
{
    Seconds time = 0;
    Bytes usefulBytes = 0;
    double hbmUtilization = 0;
};

/**
 * Run on the simulated Gaudi-2 as a TPC-C kernel (functional: gathered
 * data is checked against the source array).
 */
GatherScatterResult runGatherScatterGaudi(const GatherScatterConfig &c,
                                          Rng &rng);

/** Cost the equivalent CUDA kernel on the A100 model. */
GatherScatterResult runGatherScatterA100(const GatherScatterConfig &c);

} // namespace vespera::kern

#endif // VESPERA_KERN_GATHER_SCATTER_H
