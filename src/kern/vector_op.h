/**
 * @file
 * Analytic cost of a device-wide vector (non-GEMM) operation.
 *
 * Used by the graph executor for element-wise / normalization ops where
 * full TPC trace simulation would be overkill: the operation is either
 * bound by streaming HBM bandwidth or by the vector engines' issue
 * rate (with non-FMA ops capped at half the FMA-quoted peak, as the
 * paper's Figure 8(d,e,f) shows for both devices).
 */

#ifndef VESPERA_KERN_VECTOR_OP_H
#define VESPERA_KERN_VECTOR_OP_H

#include "hw/device_spec.h"

namespace vespera::kern {

/** Cost of one vector op over the whole device. */
struct VectorOpCost
{
    Seconds time = 0;
    Seconds computeTime = 0;
    Seconds memoryTime = 0;
    Flops flops = 0;
    Bytes hbmBytes = 0;

    bool memoryBound() const { return memoryTime >= computeTime; }
};

/**
 * @param spec Target device.
 * @param hbm_bytes Global traffic (reads + writes).
 * @param flops Useful floating-point operations.
 * @param uses_fma Whether the inner instructions are MACs.
 * @param include_launch Charge the kernel launch overhead (false for
 *        ops fused into a neighbouring kernel).
 */
VectorOpCost vectorOpCost(const hw::DeviceSpec &spec, Bytes hbm_bytes,
                          Flops flops, DataType dt, bool uses_fma,
                          bool include_launch = true);

} // namespace vespera::kern

#endif // VESPERA_KERN_VECTOR_OP_H
