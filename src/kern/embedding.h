/**
 * @file
 * Batched-embedding lookup operators (Section 4.1, Figures 14-15).
 *
 * Three Gaudi TPC-C implementations:
 *  - SdkSingleTable: models the operator shipped with the Gaudi SDK —
 *    one kernel launch per table, no manual unrolling (the paper
 *    measures it at 37% of FBGEMM-A100; our optimized SingleTable is
 *    ~1.6x faster than it).
 *  - SingleTable: our optimized per-table operator — lookup-index loop
 *    unrolled by 4 for memory-level parallelism, gathered vectors
 *    staged in TPC local memory, work spread across all TPCs
 *    (Figure 14(a)).
 *  - BatchedTable: all tables fused into one kernel launch, treating
 *    them as one large table with per-table offsets (Figure 14(b)),
 *    matching FBGEMM's CUDA BatchedTable design.
 *
 * Plus an A100 comparator modeling FBGEMM's batched embedding kernel.
 */

#ifndef VESPERA_KERN_EMBEDDING_H
#define VESPERA_KERN_EMBEDDING_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tpc/dispatcher.h"

namespace vespera::kern {

/** Embedding layer configuration (RM1/RM2 shapes come from Table 3). */
struct EmbeddingConfig
{
    int numTables = 10;
    /// Rows per table. The paper's RM configs use 1M rows; the default
    /// here is smaller so functional tables stay memory-friendly —
    /// timing depends on access counts and sizes, not on row count,
    /// once tables exceed any cache.
    std::int64_t rowsPerTable = 1 << 15;
    /// Embedding vector size in bytes (Figures 11/15 sweep 64..2048).
    Bytes vectorBytes = 256;
    int batch = 1024;
    /// Lookups pooled (summed) per sample per table.
    int pooling = 20;
    DataType dt = DataType::FP32;
};

/** Operator variants. */
enum class EmbeddingVariant {
    SdkSingleTable,
    SingleTable,
    BatchedTable,
};

const char *embeddingVariantName(EmbeddingVariant v);

/** Outcome of one embedding lookup pass. */
struct EmbeddingResult
{
    Seconds time = 0;
    /// Payload bytes gathered from embedding tables.
    Bytes gatheredBytes = 0;
    /// gatheredBytes / (time x peak HBM bandwidth) — Figure 15 y-axis.
    double hbmUtilization = 0;
    int kernelLaunches = 0;
};

/**
 * Functional + timed embedding layer on the simulated Gaudi-2.
 * Construction materializes the (concatenated) embedding tables;
 * run() draws indices, executes the TPC kernels, and verifies the
 * pooled output against a reference.
 */
class EmbeddingLayerGaudi
{
  public:
    explicit EmbeddingLayerGaudi(const EmbeddingConfig &config);

    EmbeddingResult run(EmbeddingVariant variant, Rng &rng) const;

    /**
     * run() with the variant's tuning knobs overridden: `unroll` is
     * the lookup-loop unroll factor, `interleave` the samples
     * pipelined per TPC; 0 keeps the variant's shipped value. The
     * static autotuner (analysis/predict) sweeps these axes.
     */
    EmbeddingResult run(EmbeddingVariant variant, Rng &rng, int unroll,
                        int interleave) const;

    const EmbeddingConfig &config() const { return config_; }

  private:
    EmbeddingResult runBatched(const std::vector<std::int64_t> &idx,
                               int unroll, int interleave) const;
    EmbeddingResult runPerTable(const std::vector<std::int64_t> &idx,
                                int unroll, int interleave) const;
    void verify(const std::vector<std::int64_t> &idx,
                const tpc::Tensor &out) const;

    /// Deterministic content of table row `global_row`, lane 0.
    static float rowValue(std::int64_t global_row);

    EmbeddingConfig config_;
    std::int64_t lanes_;
    std::unique_ptr<tpc::Tensor> tables_; ///< [lanes, rows x tables].
};

/** FBGEMM-style batched embedding on the A100 model. */
EmbeddingResult runEmbeddingA100(const EmbeddingConfig &config);

} // namespace vespera::kern

#endif // VESPERA_KERN_EMBEDDING_H
