#include "kern/gemm.h"

#include "common/logging.h"
#include "hw/mme.h"
#include "hw/tensor_core.h"
#include "obs/selfprof.h"

namespace vespera::kern {

hw::GemmCost
runGemm(DeviceKind device, const hw::GemmShape &shape, DataType dt)
{
    obs::SelfTimer self(obs::SelfCat::KernelEval);
    switch (device) {
      case DeviceKind::Gaudi2: {
        static const hw::MmeModel mme;
        return mme.gemm(shape, dt);
      }
      case DeviceKind::A100: {
        static const hw::TensorCoreModel tc;
        return tc.gemm(shape, dt);
      }
    }
    vpanic("unknown device");
}

} // namespace vespera::kern
