#include "kern/softmax.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "tpc/dispatcher.h"

namespace vespera::kern {

SoftmaxResult
runSoftmaxGaudi(const SoftmaxConfig &config, const tpc::Tensor &input,
                tpc::Tensor &output)
{
    vassert(config.rows >= 1 && config.cols >= 1, "bad softmax shape");
    vassert(input.dim(0) == config.cols && input.dim(1) == config.rows,
            "input shape mismatch");

    const Bytes es = dtypeSize(config.dt);
    const auto lanes = static_cast<std::int64_t>(256 / es);
    const std::int64_t cols = config.cols;
    // The exp() intermediates for one row are staged in the 80 KB TPC
    // local memory; longer rows would tile the staging buffer.
    vassert(cols <= 16 * 1024,
            "softmax rows longer than local-memory staging (%lld)",
            static_cast<long long>(cols));
    vassert(cols % lanes == 0,
            "softmax requires 256 B-aligned row length (cols %% %lld)",
            static_cast<long long>(lanes));

    tpc::Kernel kernel = [&input, &output, cols,
                          lanes](tpc::TpcContext &ctx) {
        for (std::int64_t row = ctx.memberStart(1);
             row < ctx.memberEnd(1); row++) {
            // Phase 1: row maximum (numerical stability).
            ctx.setOpLabel("phase1:max");
            tpc::Vec max1 = ctx.v_zero(1);
            bool first = true;
            for (std::int64_t c = 0; c < cols; c += lanes) {
                tpc::Vec chunk =
                    ctx.v_ld_tnsr({c, row, 0, 0, 0}, input);
                tpc::Vec m = ctx.v_reduce_max(chunk);
                max1 = first ? m : ctx.v_max(max1, m);
                first = false;
            }
            tpc::Vec maxv =
                ctx.v_broadcast(max1, static_cast<int>(lanes));

            // Phase 2: exp(x - max), staged in local memory; sum.
            ctx.setOpLabel("phase2:exp-sum");
            tpc::Vec sum1 = ctx.v_zero(1);
            for (std::int64_t c = 0; c < cols; c += lanes) {
                tpc::Vec chunk =
                    ctx.v_ld_tnsr({c, row, 0, 0, 0}, input);
                tpc::Vec e = ctx.v_exp(ctx.v_sub(chunk, maxv));
                ctx.v_st_local(c, e);
                sum1 = ctx.v_add(sum1, ctx.v_reduce_add(e));
            }
            tpc::Vec inv = ctx.v_reciprocal(sum1);
            tpc::Vec invv =
                ctx.v_broadcast(inv, static_cast<int>(lanes));

            // Phase 3: normalize and store.
            ctx.setOpLabel("phase3:normalize");
            for (std::int64_t c = 0; c < cols; c += lanes) {
                tpc::Vec e =
                    ctx.v_ld_local(c,
                                   static_cast<int>(lanes));
                ctx.v_st_tnsr({c, row, 0, 0, 0}, output,
                              ctx.v_mul(e, invv));
            }
        }
    };

    static const tpc::TpcDispatcher dispatcher;
    tpc::IndexSpace space;
    space.size = {1, config.rows, 1, 1, 1};
    tpc::LaunchParams params;
    params.numTpcs = config.numTpcs;
    params.kernelName = "softmax";
    auto launch = dispatcher.launch(kernel, space, params);

    SoftmaxResult r;
    r.time = launch.time;
    r.hbmUtilization = launch.hbmUtilization;
    r.flops = launch.totalFlops;
    return r;
}

SoftmaxResult
runSoftmaxGaudi(const SoftmaxConfig &config)
{
    tpc::Tensor input({config.cols, config.rows}, config.dt);
    input.fill([&config](std::int64_t i) {
        return static_cast<float>((i * 37) % 23) / 4.0f -
               static_cast<float>(i % 5);
    });
    tpc::Tensor output({config.cols, config.rows}, config.dt);

    SoftmaxResult r = runSoftmaxGaudi(config, input, output);

    // Verify a sample of rows against a double-precision reference.
    const std::int64_t stride =
        std::max<std::int64_t>(1, config.rows / 13);
    for (std::int64_t row = 0; row < config.rows; row += stride) {
        double maxv = -1e300;
        for (std::int64_t c = 0; c < config.cols; c++)
            maxv = std::max(maxv, static_cast<double>(
                                      input.at({c, row, 0, 0, 0})));
        double sum = 0;
        for (std::int64_t c = 0; c < config.cols; c++)
            sum += std::exp(input.at({c, row, 0, 0, 0}) - maxv);
        double check = 0;
        for (std::int64_t c = 0; c < config.cols; c += 97) {
            const double want =
                std::exp(input.at({c, row, 0, 0, 0}) - maxv) / sum;
            const double got = output.at({c, row, 0, 0, 0});
            vassert(std::abs(got - want) < 1e-4,
                    "softmax mismatch at (%lld,%lld): %f != %f",
                    static_cast<long long>(c),
                    static_cast<long long>(row), got, want);
            check += got;
        }
        (void)check;
    }
    return r;
}

} // namespace vespera::kern
