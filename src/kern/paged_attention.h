/**
 * @file
 * PagedAttention decode-kernel cost models (Section 4.2, Figures 16-17).
 *
 * Unlike the DLRM case study — where the optimization target was a
 * custom low-level TPC-C kernel — PagedAttention on Gaudi must be
 * optimized at the PyTorch level, because the SDK exposes no low-level
 * MME programming interface. These models therefore cost the three
 * implementations analytically, reflecting the execution structure of
 * Figure 16:
 *
 *  - GaudiBase (vLLM_base): a 2D BlockTable padded with zero indices.
 *    TPCs gather every BlockTable entry (padding included) into a
 *    contiguous staging buffer with a latency-bound generic gather
 *    (no manual MLP), then FusedSDPA re-reads the staged copy. Gather
 *    and GEMM run serially — the layout defeats the graph compiler's
 *    MME-TPC pipelining pass.
 *  - GaudiOpt (vLLM_opt): a flat BlockList of only-effectual block
 *    indices; the restructured query tensor lets the graph compiler
 *    slice the TPC gathers and MME batched GEMMs into pipelined
 *    sub-operations: time = max(gather, GEMM).
 *  - A100Fused: vLLM's CUDA PagedAttention kernel — one fused kernel
 *    reading each KV block exactly once at high random-access
 *    efficiency.
 */

#ifndef VESPERA_KERN_PAGED_ATTENTION_H
#define VESPERA_KERN_PAGED_ATTENTION_H

#include "common/types.h"

namespace vespera::kern {

/** One decode-step attention workload (per model layer). */
struct PagedAttentionConfig
{
    int batch = 32;          ///< Decoding requests in the batch.
    std::int64_t seqLen = 4096; ///< Context tokens per request.
    int numQHeads = 32;
    int numKvHeads = 8;
    int headDim = 128;
    int blockTokens = 128;   ///< Tokens per KV-cache block.
    /// Fraction of BlockTable entries that are zero-padding
    /// (Figure 17(b) sweeps 0..0.9). Only affects GaudiBase.
    double paddedFraction = 0;
    DataType dt = DataType::BF16;

    /** Effectual KV bytes read per decode step (K and V). */
    Bytes kvBytes() const;

    /** Attention flops per decode step (QK^T and PV). */
    Flops flops() const;
};

/** The three implementations Figure 17 compares. */
enum class PagedAttentionImpl {
    GaudiBase,
    GaudiOpt,
    A100Fused,
};

const char *pagedAttentionImplName(PagedAttentionImpl impl);

/** Cost breakdown of one decode-step attention call. */
struct PagedAttentionCost
{
    Seconds time = 0;
    Seconds gatherTime = 0; ///< TPC block-gather component.
    Seconds gemmTime = 0;   ///< MME/TC attention-GEMM component.
    Bytes kvBytes = 0;      ///< Effectual KV payload.
    /// Decode tokens produced per second at this step cost.
    double tokensPerSec = 0;
};

/** Cost one PagedAttention decode step. */
PagedAttentionCost runPagedAttention(const PagedAttentionConfig &config,
                                     PagedAttentionImpl impl);

} // namespace vespera::kern

#endif // VESPERA_KERN_PAGED_ATTENTION_H
