#include "kern/embedding.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "cuda/simt.h"

namespace vespera::kern {

namespace {

constexpr int optimizedUnroll = 4;     // Figure 14(a): unroll factor 4.
constexpr int optimizedInterleave = 4; // Samples pipelined per TPC.
// The SDK operator has no manual unrolling, but the TPC compiler still
// overlaps a couple of lookups; the paper measures our optimized
// SingleTable at ~1.6x the SDK's throughput.
constexpr int sdkUnroll = 2;
constexpr int sdkInterleave = 3;

/// FBGEMM's CUDA kernel sustains this fraction of the achievable
/// random-access bandwidth (warp-level pooling and index arithmetic).
constexpr double fbgemmEfficiency = 0.85;

const tpc::TpcDispatcher &
dispatcher()
{
    static const tpc::TpcDispatcher d;
    return d;
}

/**
 * Builds the pooled-gather TPC kernel shared by all Gaudi variants.
 *
 * Index-space dim 1 enumerates `members` (one pooled output each).
 * The optimized variants process two members' lookups interleaved
 * with the lookup loop unrolled by `unroll` and two accumulator
 * chains per member — keeping enough random loads in flight to cover
 * the HBM round trip. The SDK variant (`unroll`=1,
 * `member_interleave`=1) degenerates to the serial form.
 */
tpc::Kernel
makeGatherKernel(const tpc::Tensor &indices, tpc::Tensor &out,
                 const tpc::Tensor &tables,
                 std::function<std::int64_t(std::int64_t, std::int64_t)>
                     row_of,
                 std::int64_t lanes, Bytes vec_bytes, std::int64_t P,
                 int unroll, int member_interleave,
                 std::function<std::int64_t(std::int64_t)> out_col)
{
    return [&indices, &out, &tables, row_of = std::move(row_of), lanes,
            vec_bytes, P, unroll, member_interleave,
            out_col = std::move(out_col)](tpc::TpcContext &ctx) {
        const std::int64_t step = member_interleave;
        for (std::int64_t m0 = ctx.memberStart(1);
             m0 < ctx.memberEnd(1); m0 += step) {
            const std::int64_t m_end =
                std::min(m0 + step, ctx.memberEnd(1));
            const int group = static_cast<int>(m_end - m0);

            // Stage each member's pooling indices (one granule each).
            for (int g = 0; g < group; g++) {
                (void)ctx.v_ld_tnsr({0, m0 + g, 0, 0, 0}, indices,
                                    static_cast<Bytes>(P) * 4,
                                    tpc::Access::Stream);
            }

            // Two accumulator chains per member.
            std::vector<tpc::Vec> acc;
            for (int g = 0; g < 2 * group; g++)
                acc.push_back(ctx.v_zero(static_cast<int>(lanes)));
            std::vector<int> spin(static_cast<std::size_t>(group), 0);

            for (std::int64_t p = 0; p < P; p += unroll) {
                // Issue the group's gathers for this unroll block
                // before consuming any of them.
                std::vector<tpc::Vec> vs;
                std::vector<int> owner;
                for (int g = 0; g < group; g++) {
                    for (int u = 0; u < unroll && p + u < P; u++) {
                        const std::int64_t row = row_of(m0 + g, p + u);
                        vs.push_back(ctx.v_ld_tnsr(
                            {0, row, 0, 0, 0}, tables, vec_bytes,
                            tpc::Access::Random));
                        owner.push_back(g);
                    }
                }
                for (std::size_t i = 0; i < vs.size(); i++) {
                    const int g = owner[i];
                    auto &slot = acc[static_cast<std::size_t>(
                        2 * g + (spin[static_cast<std::size_t>(g)]++ &
                                 1))];
                    slot = ctx.v_add(slot, vs[i]);
                }
            }

            for (int g = 0; g < group; g++) {
                tpc::Vec pooled =
                    ctx.v_add(acc[static_cast<std::size_t>(2 * g)],
                              acc[static_cast<std::size_t>(2 * g + 1)]);
                // Stage in local memory before writeback
                // (Figure 14(a): gathered vectors held in TPC local
                // memory).
                ctx.v_st_local(g * lanes, pooled);
                ctx.v_st_tnsr({0, out_col(m0 + g), 0, 0, 0}, out,
                              pooled, tpc::Access::Stream);
            }
        }
    };
}

} // namespace

const char *
embeddingVariantName(EmbeddingVariant v)
{
    switch (v) {
      case EmbeddingVariant::SdkSingleTable:
        return "SDK-SingleTable";
      case EmbeddingVariant::SingleTable:
        return "SingleTable";
      case EmbeddingVariant::BatchedTable:
        return "BatchedTable";
    }
    return "?";
}

float
EmbeddingLayerGaudi::rowValue(std::int64_t global_row)
{
    return static_cast<float>(global_row % 89);
}

EmbeddingLayerGaudi::EmbeddingLayerGaudi(const EmbeddingConfig &config)
    : config_(config)
{
    vassert(config.numTables >= 1 && config.rowsPerTable >= 1 &&
            config.batch >= 1 && config.pooling >= 1,
            "bad embedding config");
    const Bytes es = dtypeSize(config.dt);
    vassert(config.vectorBytes >= es && config.vectorBytes % es == 0,
            "vector size must be a multiple of the element size");
    lanes_ = static_cast<std::int64_t>(config.vectorBytes / es);

    const std::int64_t total_rows =
        config.rowsPerTable * config.numTables;
    tables_ = std::make_unique<tpc::Tensor>(
        std::vector<std::int64_t>{lanes_, total_rows}, config.dt);
    const std::int64_t lanes = lanes_;
    tables_->fill([lanes](std::int64_t flat) {
        return rowValue(flat / lanes);
    });
}

EmbeddingResult
EmbeddingLayerGaudi::run(EmbeddingVariant variant, Rng &rng) const
{
    return run(variant, rng, 0, 0);
}

EmbeddingResult
EmbeddingLayerGaudi::run(EmbeddingVariant variant, Rng &rng, int unroll,
                         int interleave) const
{
    // idx[(sample * T + table) * P + p] = row within the table.
    const std::size_t count = static_cast<std::size_t>(config_.batch) *
                              config_.numTables * config_.pooling;
    std::vector<std::int64_t> idx(count);
    for (auto &v : idx)
        v = static_cast<std::int64_t>(rng.below(
            static_cast<std::uint64_t>(config_.rowsPerTable)));

    const bool sdk = variant == EmbeddingVariant::SdkSingleTable;
    const int u = unroll > 0 ? unroll
                             : (sdk ? sdkUnroll : optimizedUnroll);
    const int il = interleave > 0
                       ? interleave
                       : (sdk ? sdkInterleave : optimizedInterleave);
    switch (variant) {
      case EmbeddingVariant::BatchedTable:
        return runBatched(idx, u, il);
      case EmbeddingVariant::SingleTable:
      case EmbeddingVariant::SdkSingleTable:
        return runPerTable(idx, u, il);
    }
    vpanic("unknown embedding variant");
}

EmbeddingResult
EmbeddingLayerGaudi::runBatched(const std::vector<std::int64_t> &idx,
                                int unroll, int interleave) const
{
    const std::int64_t T = config_.numTables;
    const std::int64_t B = config_.batch;
    const std::int64_t P = config_.pooling;
    const std::int64_t rows = config_.rowsPerTable;
    const std::int64_t members = B * T;

    // Lookup indices handed to the kernel in one call (Figure 14(b):
    // "indices and offsets for all tables passed in a single call").
    tpc::Tensor indices({P, members}, DataType::FP32);
    indices.fill([&idx](std::int64_t flat) {
        return static_cast<float>(idx[static_cast<std::size_t>(flat)]);
    });
    tpc::Tensor out({lanes_, members}, config_.dt);

    tpc::Kernel kernel = makeGatherKernel(
        indices, out, *tables_,
        [&idx, P, rows, T](std::int64_t m, std::int64_t p) {
            return (m % T) * rows +
                   idx[static_cast<std::size_t>(m * P + p)];
        },
        lanes_, config_.vectorBytes, P, unroll, interleave,
        [](std::int64_t m) { return m; });

    tpc::IndexSpace space;
    space.size = {1, members, 1, 1, 1};
    tpc::LaunchParams params;
    params.vectorBytes = std::min<Bytes>(config_.vectorBytes, 256);
    params.kernelName = "embedding_batched";
    auto launch = dispatcher().launch(kernel, space, params);

    verify(idx, out);

    EmbeddingResult r;
    r.time = launch.time;
    r.gatheredBytes =
        static_cast<Bytes>(B) * T * P * config_.vectorBytes;
    r.hbmUtilization = static_cast<double>(r.gatheredBytes) /
                       (r.time * hw::gaudi2Spec().hbmBandwidth);
    r.kernelLaunches = 1;
    return r;
}

EmbeddingResult
EmbeddingLayerGaudi::runPerTable(const std::vector<std::int64_t> &idx,
                                 int unroll, int interleave) const
{
    const std::int64_t T = config_.numTables;
    const std::int64_t B = config_.batch;
    const std::int64_t P = config_.pooling;
    const std::int64_t rows = config_.rowsPerTable;

    tpc::Tensor out({lanes_, B * T}, config_.dt);

    EmbeddingResult r;
    for (std::int64_t table = 0; table < T; table++) {
        // Per-table index staging tensor (separate kernel launch).
        tpc::Tensor indices({P, B}, DataType::FP32);
        indices.fill([&idx, table, T, P](std::int64_t flat) {
            const std::int64_t s = flat / P;
            const std::int64_t p = flat % P;
            return static_cast<float>(
                idx[static_cast<std::size_t>(((s * T) + table) * P + p)]);
        });

        const std::int64_t table_offset = table * rows;
        tpc::Kernel kernel = makeGatherKernel(
            indices, out, *tables_,
            [&idx, P, T, table, table_offset](std::int64_t s,
                                              std::int64_t p) {
                return table_offset +
                       idx[static_cast<std::size_t>(
                           ((s * T) + table) * P + p)];
            },
            lanes_, config_.vectorBytes, P, unroll, interleave,
            [T, table](std::int64_t s) { return s * T + table; });

        tpc::IndexSpace space;
        space.size = {1, B, 1, 1, 1};
        tpc::LaunchParams params;
        params.vectorBytes = std::min<Bytes>(config_.vectorBytes, 256);
        params.kernelName = unroll == sdkUnroll
                                ? "embedding_sdk_single_table"
                                : "embedding_single_table";
        auto launch = dispatcher().launch(kernel, space, params);
        r.time += launch.time;
        r.kernelLaunches++;
    }

    verify(idx, out);

    r.gatheredBytes =
        static_cast<Bytes>(B) * T * P * config_.vectorBytes;
    r.hbmUtilization = static_cast<double>(r.gatheredBytes) /
                       (r.time * hw::gaudi2Spec().hbmBandwidth);
    return r;
}

void
EmbeddingLayerGaudi::verify(const std::vector<std::int64_t> &idx,
                            const tpc::Tensor &out) const
{
    const std::int64_t T = config_.numTables;
    const std::int64_t B = config_.batch;
    const std::int64_t P = config_.pooling;
    for (std::int64_t m = 0; m < B * T;
         m += std::max<std::int64_t>(1, (B * T) / 64)) {
        const std::int64_t table = m % T;
        float want = 0;
        for (std::int64_t p = 0; p < P; p++) {
            const std::int64_t row = table * config_.rowsPerTable +
                idx[static_cast<std::size_t>(m * P + p)];
            want += rowValue(row);
        }
        const float got = out.at(tpc::Int5{0, m, 0, 0, 0});
        vassert(got == want,
                "embedding verification failed at member %lld: %f != %f",
                static_cast<long long>(m), static_cast<double>(got),
                static_cast<double>(want));
    }
}

EmbeddingResult
runEmbeddingA100(const EmbeddingConfig &config)
{
    static const cuda::SimtModel model;
    const auto accesses = static_cast<std::uint64_t>(config.batch) *
                          config.numTables * config.pooling;
    // FBGEMM's BatchedTable: one kernel, massive thread-level
    // parallelism; occupancy scales with the number of lookups.
    const double occupancy =
        std::min<double>(2048.0, static_cast<double>(accesses) / 32.0);
    auto gather = model.gatherScatter(config.vectorBytes, accesses,
                                      false, std::max(1.0, occupancy));
    // Pooled outputs written back streaming.
    const Bytes out_bytes = static_cast<Bytes>(config.batch) *
                            config.numTables * config.vectorBytes;
    const Seconds write = model.hbm().streamTime(out_bytes);

    EmbeddingResult r;
    r.time = gather.memoryTime / fbgemmEfficiency + write +
             hw::a100Spec().launchOverhead;
    r.gatheredBytes = accesses * config.vectorBytes;
    r.hbmUtilization = static_cast<double>(r.gatheredBytes) /
                       (r.time * hw::a100Spec().hbmBandwidth);
    r.kernelLaunches = 1;
    return r;
}

} // namespace vespera::kern
