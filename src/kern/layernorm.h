/**
 * @file
 * Row-wise normalization operators (LayerNorm and RMSNorm) as TPC-C
 * kernels — the "reduction and normalization operations" the paper's
 * MLIR-based operation fuser JIT-compiles into TPC kernels
 * (Section 2.2).
 */

#ifndef VESPERA_KERN_LAYERNORM_H
#define VESPERA_KERN_LAYERNORM_H

#include "common/types.h"
#include "tpc/tensor.h"

namespace vespera::kern {

/** Normalization flavor. */
enum class NormKind {
    LayerNorm, ///< (x - mean) / sqrt(var + eps)
    RmsNorm,   ///< x / sqrt(mean(x^2) + eps)
};

/** Workload: `rows` independent rows of `cols` elements. */
struct NormConfig
{
    NormKind kind = NormKind::RmsNorm;
    std::int64_t rows = 1024;
    std::int64_t cols = 4096;
    DataType dt = DataType::FP32;
    int numTpcs = 24;
    float epsilon = 1e-5f;
};

/** Outcome. */
struct NormResult
{
    Seconds time = 0;
    double hbmUtilization = 0;
    Flops flops = 0;
};

/** Normalize `input` ([cols, rows]) into `output`. */
NormResult runNormGaudi(const NormConfig &config,
                        const tpc::Tensor &input, tpc::Tensor &output);

/** Convenience: deterministic input, runs, and self-verifies. */
NormResult runNormGaudi(const NormConfig &config);

} // namespace vespera::kern

#endif // VESPERA_KERN_LAYERNORM_H
