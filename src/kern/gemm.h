/**
 * @file
 * Device-dispatching GEMM entry point (the PyTorch `torch.matmul` of
 * Figure 2(a): cuBLAS on "cuda", MME built-ins on "hpu").
 */

#ifndef VESPERA_KERN_GEMM_H
#define VESPERA_KERN_GEMM_H

#include "hw/gemm_cost.h"

namespace vespera::kern {

/** Cost a GEMM on the given device's matrix engine. */
hw::GemmCost runGemm(DeviceKind device, const hw::GemmShape &shape,
                     DataType dt);

} // namespace vespera::kern

#endif // VESPERA_KERN_GEMM_H
