#include "kern/stream.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "cuda/simt.h"
#include "tpc/dispatcher.h"

namespace vespera::kern {

namespace {

/// Bytes of global traffic per element (reads + writes).
double
bytesPerElement(StreamOp op, DataType dt)
{
    const double es = static_cast<double>(dtypeSize(dt));
    switch (op) {
      case StreamOp::Add:
      case StreamOp::Triad:
        return 3 * es; // Two reads, one write.
      case StreamOp::Scale:
        return 2 * es; // One read, one write.
    }
    vpanic("unknown stream op");
}

double
baseFlopsPerElement(StreamOp op)
{
    return op == StreamOp::Triad ? 2.0 : 1.0;
}

constexpr float streamScalar = 3.0f;

} // namespace

const char *
streamOpName(StreamOp op)
{
    switch (op) {
      case StreamOp::Add:
        return "ADD";
      case StreamOp::Scale:
        return "SCALE";
      case StreamOp::Triad:
        return "TRIAD";
    }
    return "?";
}

StreamResult
runStreamGaudi(const StreamConfig &config)
{
    vassert(config.numElements > 0 && config.unroll >= 1 &&
            config.numTpcs >= 1, "bad stream config");

    const auto n = static_cast<std::int64_t>(config.numElements);
    tpc::Tensor a({n}, config.dt);
    tpc::Tensor b({n}, config.dt);
    tpc::Tensor c({n}, config.dt);
    a.fill([](std::int64_t i) { return static_cast<float>(i % 251); });
    b.fill([](std::int64_t i) { return static_cast<float>(i % 127); });

    const Bytes es = dtypeSize(config.dt);
    vassert(config.accessBytes >= es,
            "access granularity below element size");
    const auto lanes = static_cast<std::int64_t>(config.accessBytes / es);
    const std::int64_t per_tpc =
        (n + config.numTpcs - 1) / config.numTpcs;

    const StreamOp op = config.op;
    const int unroll = config.unroll;
    const int extra = config.extraComputePerVector;

    tpc::Kernel kernel = [&, per_tpc, lanes, op, unroll,
                          extra](tpc::TpcContext &ctx) {
        for (std::int64_t w = ctx.memberStart(1); w < ctx.memberEnd(1);
             w++) {
            const std::int64_t begin = w * per_tpc;
            const std::int64_t end = std::min(begin + per_tpc, n);
            for (std::int64_t d = begin; d < end;
                 d += lanes * unroll) {
                std::vector<tpc::Vec> xs, ys;
                for (int u = 0; u < unroll; u++) {
                    const std::int64_t at = d + u * lanes;
                    if (at >= end)
                        break;
                    tpc::Int5 coord{at, 0, 0, 0, 0};
                    xs.push_back(ctx.v_ld_tnsr(coord, a,
                                               config.accessBytes));
                    if (op != StreamOp::Scale)
                        ys.push_back(ctx.v_ld_tnsr(coord, b,
                                                   config.accessBytes));
                }
                std::vector<tpc::Vec> rs(xs.size());
                for (std::size_t u = 0; u < xs.size(); u++) {
                    switch (op) {
                      case StreamOp::Add:
                        rs[u] = ctx.v_add(xs[u], ys[u]);
                        break;
                      case StreamOp::Scale:
                        rs[u] = ctx.v_mul_s(xs[u], streamScalar);
                        break;
                      case StreamOp::Triad:
                        rs[u] = ctx.v_mac_s(xs[u], streamScalar,
                                            ys[u]);
                        break;
                    }
                }
                // Value-preserving filler compute used to raise
                // operational intensity (Figure 8(d,e,f)); rounds are
                // interleaved across the unrolled chains so the
                // 4-cycle latency stays hidden, as a hand-tuned
                // kernel would arrange.
                for (int e = 0; e < extra; e++) {
                    for (auto &r : rs) {
                        r = op == StreamOp::Triad
                                ? ctx.v_mac_s(r, 0.0f, r)
                                : ctx.v_mul_s(r, 1.0f);
                    }
                }
                for (std::size_t u = 0; u < rs.size(); u++) {
                    const std::int64_t at =
                        d + static_cast<std::int64_t>(u) * lanes;
                    tpc::Int5 coord{at, 0, 0, 0, 0};
                    ctx.v_st_tnsr(coord, op == StreamOp::Scale ? b : c,
                                  rs[u]);
                }
            }
        }
    };

    static const tpc::TpcDispatcher dispatcher;
    tpc::IndexSpace space;
    space.size = {1, config.numTpcs, 1, 1, 1};
    tpc::LaunchParams params;
    params.numTpcs = config.numTpcs;
    params.vectorBytes = config.accessBytes;
    params.kernelName = std::string("stream_") + streamOpName(op);
    auto launch = dispatcher.launch(kernel, space, params);

    // Spot-verify functional output.
    for (std::int64_t i = 0; i < n; i += std::max<std::int64_t>(1, n / 7)) {
        const float x = static_cast<float>(i % 251);
        const float y = static_cast<float>(i % 127);
        float want = 0;
        switch (op) {
          case StreamOp::Add:
            want = x + y;
            break;
          case StreamOp::Scale:
            want = streamScalar * x;
            break;
          case StreamOp::Triad:
            want = streamScalar * x + y;
            break;
        }
        const float got =
            op == StreamOp::Scale ? b.at(i) : c.at(i);
        vassert(got == want, "STREAM %s mismatch at %lld: %f != %f",
                streamOpName(op), static_cast<long long>(i),
                static_cast<double>(got), static_cast<double>(want));
    }

    const double useful_bytes =
        bytesPerElement(op, config.dt) * static_cast<double>(n);
    StreamResult r;
    r.time = launch.time;
    r.flops = launch.totalFlops;
    r.gflops = r.flops / r.time / 1e9;
    r.vectorUtilization =
        r.flops / r.time / hw::gaudi2Spec().vectorPeak(config.dt);
    r.hbmUtilization =
        useful_bytes / (r.time * hw::gaudi2Spec().hbmBandwidth);
    r.operationalIntensity = r.flops / useful_bytes;
    return r;
}

StreamResult
runStreamA100(const StreamConfig &config)
{
    static const cuda::SimtModel model;

    cuda::StreamKernelDesc desc;
    desc.numElements = config.numElements;
    desc.bytesPerElement = bytesPerElement(config.op, config.dt);
    const double extra_flops =
        config.extraComputePerVector *
        (config.op == StreamOp::Triad ? 2.0 : 1.0);
    desc.flopsPerElement = baseFlopsPerElement(config.op) + extra_flops;
    desc.usesFma = config.op == StreamOp::Triad;
    auto cost = model.streamKernel(desc, config.dt);

    StreamResult r;
    r.time = cost.time;
    r.flops = cost.flops;
    r.gflops = r.flops / r.time / 1e9;
    r.vectorUtilization =
        r.flops / r.time / hw::a100Spec().vectorPeak(config.dt);
    r.hbmUtilization = cost.hbmUtilization;
    r.operationalIntensity =
        desc.flopsPerElement / desc.bytesPerElement;
    return r;
}

} // namespace vespera::kern
