/**
 * @file
 * Row-wise softmax as a TPC-C kernel.
 *
 * The paper positions the TPCs as the engine for "nonlinear and
 * non-matrix-based computations, such as ... activation functions"
 * (Section 2.1); this operator demonstrates the full intrinsic set
 * (loads, reductions, special functions, local-memory staging) on a
 * numerically safe three-phase max/exp-sum/normalize softmax, and is
 * the kind of kernel the graph compiler's MLIR fuser JIT-generates.
 */

#ifndef VESPERA_KERN_SOFTMAX_H
#define VESPERA_KERN_SOFTMAX_H

#include "common/types.h"
#include "tpc/tensor.h"

namespace vespera::kern {

/** Softmax workload: `rows` independent rows of `cols` scores. */
struct SoftmaxConfig
{
    std::int64_t rows = 1024;
    std::int64_t cols = 1024;
    DataType dt = DataType::FP32;
    int numTpcs = 24;
};

/** Outcome. */
struct SoftmaxResult
{
    Seconds time = 0;
    double hbmUtilization = 0;
    Flops flops = 0;
};

/**
 * Run softmax over `input` (shape [cols, rows]), writing `output`.
 * Functionally exact (verified by the caller or tests); timing comes
 * from the TPC pipeline model.
 */
SoftmaxResult runSoftmaxGaudi(const SoftmaxConfig &config,
                              const tpc::Tensor &input,
                              tpc::Tensor &output);

/** Convenience: builds deterministic input, runs, and self-verifies. */
SoftmaxResult runSoftmaxGaudi(const SoftmaxConfig &config);

} // namespace vespera::kern

#endif // VESPERA_KERN_SOFTMAX_H
