#include "kern/layernorm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tpc/dispatcher.h"

namespace vespera::kern {

NormResult
runNormGaudi(const NormConfig &config, const tpc::Tensor &input,
             tpc::Tensor &output)
{
    vassert(config.rows >= 1 && config.cols >= 1, "bad norm shape");
    vassert(input.dim(0) == config.cols && input.dim(1) == config.rows,
            "input shape mismatch");
    const Bytes es = dtypeSize(config.dt);
    const auto lanes = static_cast<std::int64_t>(256 / es);
    vassert(config.cols % lanes == 0,
            "norm requires 256 B-aligned row length");

    const std::int64_t cols = config.cols;
    const NormKind kind = config.kind;
    const float eps = config.epsilon;
    const float inv_n = 1.0f / static_cast<float>(cols);

    tpc::Kernel kernel = [&input, &output, cols, lanes, kind, eps,
                          inv_n](tpc::TpcContext &ctx) {
        for (std::int64_t row = ctx.memberStart(1);
             row < ctx.memberEnd(1); row++) {
            // Pass 1: accumulate sum(x) and sum(x^2).
            ctx.setOpLabel("pass1:moments");
            tpc::Vec sum1 = ctx.v_zero(1);
            tpc::Vec sq1 = ctx.v_zero(1);
            for (std::int64_t c = 0; c < cols; c += lanes) {
                tpc::Vec x = ctx.v_ld_tnsr({c, row, 0, 0, 0}, input);
                sum1 = ctx.v_add(sum1, ctx.v_reduce_add(x));
                sq1 = ctx.v_add(sq1, ctx.v_reduce_add(ctx.v_mul(x, x)));
            }

            // Scalar epilogue on one-lane vectors.
            tpc::Vec mean1 = ctx.v_mul_s(sum1, inv_n);
            tpc::Vec meansq1 = ctx.v_mul_s(sq1, inv_n);
            tpc::Vec inv1;
            if (kind == NormKind::LayerNorm) {
                // var = E[x^2] - mean^2.
                tpc::Vec var1 =
                    ctx.v_sub(meansq1, ctx.v_mul(mean1, mean1));
                inv1 = ctx.v_rsqrt(ctx.v_add(var1, ctx.v_splat(eps, 1)));
            } else {
                inv1 = ctx.v_rsqrt(
                    ctx.v_add(meansq1, ctx.v_splat(eps, 1)));
            }
            tpc::Vec inv =
                ctx.v_broadcast(inv1, static_cast<int>(lanes));
            tpc::Vec mean =
                ctx.v_broadcast(mean1, static_cast<int>(lanes));

            // Pass 2: normalize and store.
            ctx.setOpLabel("pass2:normalize");
            for (std::int64_t c = 0; c < cols; c += lanes) {
                tpc::Vec x = ctx.v_ld_tnsr({c, row, 0, 0, 0}, input);
                tpc::Vec y = kind == NormKind::LayerNorm
                                 ? ctx.v_mul(ctx.v_sub(x, mean), inv)
                                 : ctx.v_mul(x, inv);
                ctx.v_st_tnsr({c, row, 0, 0, 0}, output, y);
            }
        }
    };

    static const tpc::TpcDispatcher dispatcher;
    tpc::IndexSpace space;
    space.size = {1, config.rows, 1, 1, 1};
    tpc::LaunchParams params;
    params.numTpcs = config.numTpcs;
    params.kernelName =
        kind == NormKind::LayerNorm ? "layernorm" : "rmsnorm";
    auto launch = dispatcher.launch(kernel, space, params);

    NormResult r;
    r.time = launch.time;
    r.hbmUtilization = launch.hbmUtilization;
    r.flops = launch.totalFlops;
    return r;
}

NormResult
runNormGaudi(const NormConfig &config)
{
    tpc::Tensor input({config.cols, config.rows}, config.dt);
    input.fill([](std::int64_t i) {
        return static_cast<float>((i * 13) % 31) / 7.0f - 2.0f;
    });
    tpc::Tensor output({config.cols, config.rows}, config.dt);

    NormResult r = runNormGaudi(config, input, output);

    // Verify sampled rows against a double-precision reference.
    const std::int64_t stride =
        std::max<std::int64_t>(1, config.rows / 9);
    for (std::int64_t row = 0; row < config.rows; row += stride) {
        double sum = 0, sq = 0;
        for (std::int64_t c = 0; c < config.cols; c++) {
            const double x = input.at({c, row, 0, 0, 0});
            sum += x;
            sq += x * x;
        }
        const double n = static_cast<double>(config.cols);
        const double mean = sum / n;
        double inv;
        if (config.kind == NormKind::LayerNorm) {
            inv = 1.0 / std::sqrt(sq / n - mean * mean +
                                  config.epsilon);
        } else {
            inv = 1.0 / std::sqrt(sq / n + config.epsilon);
        }
        for (std::int64_t c = 0; c < config.cols; c += 53) {
            const double x = input.at({c, row, 0, 0, 0});
            const double want = config.kind == NormKind::LayerNorm
                                    ? (x - mean) * inv
                                    : x * inv;
            const double got = output.at({c, row, 0, 0, 0});
            vassert(std::abs(got - want) < 1e-3,
                    "norm mismatch at (%lld,%lld): %f != %f",
                    static_cast<long long>(c),
                    static_cast<long long>(row), got, want);
        }
    }
    return r;
}

} // namespace vespera::kern
