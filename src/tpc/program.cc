#include "tpc/program.h"

#include "common/logging.h"

namespace vespera::tpc {

std::int16_t
Program::internLabel(std::string_view label)
{
    for (std::size_t i = 0; i < labels_.size(); i++) {
        if (labels_[i] == label)
            return static_cast<std::int16_t>(i);
    }
    vassert(labels_.size() < 0x7fff, "label table overflow");
    labels_.emplace_back(label);
    return static_cast<std::int16_t>(labels_.size() - 1);
}

const std::string &
Program::label(std::int16_t index) const
{
    static const std::string empty;
    if (index < 0 || static_cast<std::size_t>(index) >= labels_.size())
        return empty;
    return labels_[static_cast<std::size_t>(index)];
}

Flops
Program::flops() const
{
    double total = 0;
    for (const auto &i : instrs_)
        total += static_cast<double>(i.flopsPerLane) * i.lanes;
    return total;
}

Bytes
Program::streamBytes() const
{
    Bytes total = 0;
    for (const auto &i : instrs_) {
        if ((i.slot == Slot::Load || i.slot == Slot::Store) &&
            i.access == Access::Stream) {
            total += i.memBytes;
        }
    }
    return total;
}

Bytes
Program::randomBytes() const
{
    Bytes total = 0;
    for (const auto &i : instrs_) {
        if ((i.slot == Slot::Load || i.slot == Slot::Store) &&
            i.access == Access::Random) {
            total += i.memBytes;
        }
    }
    return total;
}

std::uint64_t
Program::randomTransactions(Bytes granule) const
{
    vassert(granule > 0, "zero granule");
    std::uint64_t txns = 0;
    for (const auto &i : instrs_) {
        if ((i.slot == Slot::Load || i.slot == Slot::Store) &&
            i.access == Access::Random) {
            txns += (i.memBytes + granule - 1) / granule;
        }
    }
    return txns;
}

Bytes
Program::busBytes(Bytes granule) const
{
    vassert(granule > 0, "zero granule");
    Bytes total = 0;
    for (const auto &i : instrs_) {
        if (i.slot != Slot::Load && i.slot != Slot::Store)
            continue;
        if (i.access == Access::Local)
            continue;
        total += (i.memBytes + granule - 1) / granule * granule;
    }
    return total;
}

Program::Stats
Program::stats() const
{
    Stats s;
    for (const auto &i : instrs_) {
        switch (i.slot) {
          case Slot::Load:
            s.loads++;
            break;
          case Slot::Store:
            s.stores++;
            break;
          case Slot::Vector:
            s.vectorOps++;
            break;
          case Slot::Scalar:
            s.scalarOps++;
            break;
        }
        if (i.memBytes > 0) {
            switch (i.access) {
              case Access::Stream:
                s.streamAccesses++;
                break;
              case Access::Random:
                s.randomAccesses++;
                break;
              case Access::Local:
                s.localAccesses++;
                break;
            }
        }
    }
    return s;
}

} // namespace vespera::tpc
