#include "tpc/program.h"

#include "common/logging.h"

namespace vespera::tpc {

Flops
Program::flops() const
{
    double total = 0;
    for (const auto &i : instrs_)
        total += static_cast<double>(i.flopsPerLane) * i.lanes;
    return total;
}

Bytes
Program::streamBytes() const
{
    Bytes total = 0;
    for (const auto &i : instrs_) {
        if ((i.slot == Slot::Load || i.slot == Slot::Store) &&
            i.access == Access::Stream) {
            total += i.memBytes;
        }
    }
    return total;
}

Bytes
Program::randomBytes() const
{
    Bytes total = 0;
    for (const auto &i : instrs_) {
        if ((i.slot == Slot::Load || i.slot == Slot::Store) &&
            i.access == Access::Random) {
            total += i.memBytes;
        }
    }
    return total;
}

std::uint64_t
Program::randomTransactions(Bytes granule) const
{
    vassert(granule > 0, "zero granule");
    std::uint64_t txns = 0;
    for (const auto &i : instrs_) {
        if ((i.slot == Slot::Load || i.slot == Slot::Store) &&
            i.access == Access::Random) {
            txns += (i.memBytes + granule - 1) / granule;
        }
    }
    return txns;
}

Bytes
Program::busBytes(Bytes granule) const
{
    vassert(granule > 0, "zero granule");
    Bytes total = 0;
    for (const auto &i : instrs_) {
        if (i.slot != Slot::Load && i.slot != Slot::Store)
            continue;
        if (i.access == Access::Local)
            continue;
        total += (i.memBytes + granule - 1) / granule * granule;
    }
    return total;
}

Program::Stats
Program::stats() const
{
    Stats s;
    for (const auto &i : instrs_) {
        switch (i.slot) {
          case Slot::Load:
            s.loads++;
            break;
          case Slot::Store:
            s.stores++;
            break;
          case Slot::Vector:
            s.vectorOps++;
            break;
          case Slot::Scalar:
            s.scalarOps++;
            break;
        }
        if (i.memBytes > 0) {
            switch (i.access) {
              case Access::Stream:
                s.streamAccesses++;
                break;
              case Access::Random:
                s.randomAccesses++;
                break;
              case Access::Local:
                s.localAccesses++;
                break;
            }
        }
    }
    return s;
}

} // namespace vespera::tpc
