#include "tpc/dispatcher.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "mem/arena.h"
#include "obs/attrib.h"
#include "obs/selfprof.h"
#include "runtime/parallel.h"

namespace vespera::tpc {

namespace {
TraceObserver &
traceObserver()
{
    static TraceObserver observer;
    return observer;
}
} // namespace

TraceObserver
setTraceObserver(TraceObserver observer)
{
    TraceObserver prev = std::move(traceObserver());
    traceObserver() = std::move(observer);
    return prev;
}

TpcDispatcher::TpcDispatcher(const hw::DeviceSpec &spec)
    : spec_(spec), hbm_(spec)
{
    vassert(spec.kind == DeviceKind::Gaudi2,
            "TpcDispatcher simulates the Gaudi TPC array");
}

LaunchResult
TpcDispatcher::launch(const Kernel &kernel, const IndexSpace &space,
                      const LaunchParams &params) const
{
    vassert(params.numTpcs >= 1 && params.numTpcs <= spec_.numVectorCores,
            "numTpcs %d out of range (1..%d)", params.numTpcs,
            spec_.numVectorCores);
    vassert(params.partitionDim >= 0 && params.partitionDim < 5,
            "bad partition dimension");

    const std::int64_t extent = space.size[params.partitionDim];
    vassert(extent >= 1, "empty index space");

    LaunchResult result;
    Bytes stream_bus = 0;
    Bytes random_bus = 0;
    std::uint64_t random_accesses = 0;
    double chip_concurrency = 0;

    const std::int64_t per_tpc =
        (extent + params.numTpcs - 1) / params.numTpcs;

    // One TPC engine's slice: build the trace, time it.
    struct TpcOutcome
    {
        bool active = false;
        PipelineResult pr;
        Bytes usefulBytes = 0;
        Bytes localHighWater = 0;
    };
    auto simulateTpc = [&](int t) {
        TpcOutcome out;
        MemberRange range;
        for (int d = 0; d < 5; d++) {
            range.start[d] = 0;
            range.end[d] = space.size[d];
        }
        range.start[params.partitionDim] =
            std::min<std::int64_t>(t * per_tpc, extent);
        range.end[params.partitionDim] =
            std::min<std::int64_t>((t + 1) * per_tpc, extent);
        if (range.empty())
            return out;

        // The trace is transient — recorded, evaluated, discarded —
        // so it bump-allocates from this thread's scratch arena. Not
        // when an observer is registered: the observer may copy the
        // program into storage that outlives this scope (the kernel
        // trace registry does), and those copies must be heap-backed.
        std::optional<mem::ScopedArena> arena;
        if (!traceObserver())
            arena.emplace(mem::Arena::scratch());

        Program program;
        program.setKernelName(params.kernelName);
        TpcContext ctx(program, range, params.vectorBytes);
        {
            obs::SelfTimer self(obs::SelfCat::TraceRecord);
            kernel(ctx);
        }
        if (program.empty())
            return out;
        if (traceObserver())
            traceObserver()(program, t);

        {
            obs::SelfTimer self(obs::SelfCat::KernelEval);
            out.pr = evaluatePipeline(program, params.tpc);
        }
        out.usefulBytes = program.streamBytes() + program.randomBytes();
        out.localHighWater = ctx.localHighWater();
        out.active = true;
        return out;
    };

    // Each TPC simulates its grid slice on its own worker; the
    // reduction below runs in TPC order either way, so chip-level
    // sums are bit-identical at any thread count (parallel_map replays
    // per-TPC counter effects in index order — see runtime/parallel.h).
    // The trace-observer path stays serial: observers are documented
    // as unsynchronized and tooling (vespera-lint) does not need the
    // parallel speedup.
    std::vector<TpcOutcome> outcomes;
    const bool parallel = runtime::Pool::global().threads() > 1 &&
                          params.numTpcs > 1 && !traceObserver();
    if (parallel) {
        outcomes = runtime::parallel_map(
            static_cast<std::size_t>(params.numTpcs),
            [&](std::size_t t) {
                return simulateTpc(static_cast<int>(t));
            });
    } else {
        outcomes.reserve(static_cast<std::size_t>(params.numTpcs));
        for (int t = 0; t < params.numTpcs; t++)
            outcomes.push_back(simulateTpc(t));
    }

    double busy_sum = 0;
    for (const TpcOutcome &out : outcomes) {
        if (!out.active)
            continue;
        const PipelineResult &pr = out.pr;
        busy_sum += pr.time;
        result.slowestTpcTime = std::max(result.slowestTpcTime, pr.time);
        result.totalFlops += pr.flops;
        result.busBytes += pr.busBytes;
        result.usefulBytes += out.usefulBytes;
        result.localMemHighWater =
            std::max(result.localMemHighWater, out.localHighWater);
        random_accesses += pr.randomAccesses;
        chip_concurrency += pr.memConcurrency;
        random_bus += pr.randomTxns * params.tpc.granule;
        result.activeTpcs++;
    }
    vassert(result.activeTpcs > 0, "kernel produced no work");
    stream_bus = result.busBytes - random_bus;

    // Chip-level HBM bound: streaming traffic at sustained stream
    // bandwidth plus random traffic at MLP-dependent random bandwidth.
    result.memoryBoundTime = hbm_.streamTime(stream_bus);
    if (random_accesses > 0) {
        result.memoryBoundTime += hbm_.randomTrafficTime(
            random_bus, random_accesses,
            std::max(chip_concurrency, 1.0));
    }

    result.time = std::max(result.slowestTpcTime, result.memoryBoundTime) +
                  spec_.launchOverhead;
    result.achievedFlopsPerSec = result.totalFlops / result.time;
    result.hbmUtilization = static_cast<double>(result.usefulBytes) /
                            (result.time * spec_.hbmBandwidth);

    // Chip-level attribution for this launch: the mean per-TPC busy
    // time over all *allocated* engines is useful compute; the gap up
    // to the slowest engine is slot-imbalance idle time; any HBM bound
    // beyond the slowest engine is exposed bandwidth stall; the launch
    // overhead is exposed latency (and absorbs fp residue as the
    // settled residual).
    static const int attribScope =
        obs::AttributionLedger::instance().scope("tpc");
    obs::AttribBreakdown b;
    const double mean_busy = busy_sum / params.numTpcs;
    b[obs::AttribCat::Compute] = mean_busy;
    b[obs::AttribCat::Idle] =
        std::max(0.0, result.slowestTpcTime - mean_busy);
    b[obs::AttribCat::MemoryBw] = std::max(
        0.0, result.memoryBoundTime - result.slowestTpcTime);
    b.settle(obs::AttribCat::ExposedLat, result.time);
    obs::AttributionLedger::instance().charge(
        attribScope,
        strfmt("%s x%d", params.kernelName.c_str(), params.numTpcs),
        b);
    return result;
}

} // namespace vespera::tpc
