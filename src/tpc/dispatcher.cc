#include "tpc/dispatcher.h"

#include <algorithm>

#include "common/logging.h"

namespace vespera::tpc {

namespace {
TraceObserver &
traceObserver()
{
    static TraceObserver observer;
    return observer;
}
} // namespace

TraceObserver
setTraceObserver(TraceObserver observer)
{
    TraceObserver prev = std::move(traceObserver());
    traceObserver() = std::move(observer);
    return prev;
}

TpcDispatcher::TpcDispatcher(const hw::DeviceSpec &spec)
    : spec_(spec), hbm_(spec)
{
    vassert(spec.kind == DeviceKind::Gaudi2,
            "TpcDispatcher simulates the Gaudi TPC array");
}

LaunchResult
TpcDispatcher::launch(const Kernel &kernel, const IndexSpace &space,
                      const LaunchParams &params) const
{
    vassert(params.numTpcs >= 1 && params.numTpcs <= spec_.numVectorCores,
            "numTpcs %d out of range (1..%d)", params.numTpcs,
            spec_.numVectorCores);
    vassert(params.partitionDim >= 0 && params.partitionDim < 5,
            "bad partition dimension");

    const std::int64_t extent = space.size[params.partitionDim];
    vassert(extent >= 1, "empty index space");

    LaunchResult result;
    Bytes stream_bus = 0;
    Bytes random_bus = 0;
    std::uint64_t random_accesses = 0;
    double chip_concurrency = 0;

    const std::int64_t per_tpc =
        (extent + params.numTpcs - 1) / params.numTpcs;

    for (int t = 0; t < params.numTpcs; t++) {
        MemberRange range;
        for (int d = 0; d < 5; d++) {
            range.start[d] = 0;
            range.end[d] = space.size[d];
        }
        range.start[params.partitionDim] =
            std::min<std::int64_t>(t * per_tpc, extent);
        range.end[params.partitionDim] =
            std::min<std::int64_t>((t + 1) * per_tpc, extent);
        if (range.empty())
            continue;

        Program program;
        program.setKernelName(params.kernelName);
        TpcContext ctx(program, range, params.vectorBytes);
        kernel(ctx);
        if (program.empty())
            continue;
        if (traceObserver())
            traceObserver()(program, t);

        PipelineResult pr = evaluatePipeline(program, params.tpc);
        result.slowestTpcTime = std::max(result.slowestTpcTime, pr.time);
        result.totalFlops += pr.flops;
        result.busBytes += pr.busBytes;
        result.usefulBytes +=
            program.streamBytes() + program.randomBytes();
        result.localMemHighWater =
            std::max(result.localMemHighWater, ctx.localHighWater());
        random_accesses += pr.randomAccesses;
        chip_concurrency += pr.memConcurrency;
        random_bus += pr.randomTxns * params.tpc.granule;
        result.activeTpcs++;
    }
    vassert(result.activeTpcs > 0, "kernel produced no work");
    stream_bus = result.busBytes - random_bus;

    // Chip-level HBM bound: streaming traffic at sustained stream
    // bandwidth plus random traffic at MLP-dependent random bandwidth.
    result.memoryBoundTime = hbm_.streamTime(stream_bus);
    if (random_accesses > 0) {
        result.memoryBoundTime += hbm_.randomTrafficTime(
            random_bus, random_accesses,
            std::max(chip_concurrency, 1.0));
    }

    result.time = std::max(result.slowestTpcTime, result.memoryBoundTime) +
                  spec_.launchOverhead;
    result.achievedFlopsPerSec = result.totalFlops / result.time;
    result.hbmUtilization = static_cast<double>(result.usefulBytes) /
                            (result.time * spec_.hbmBandwidth);
    return result;
}

} // namespace vespera::tpc
