/**
 * @file
 * VLIW timing model for a single TPC.
 *
 * Replays a recorded Program trace under the TPC's issue rules:
 * in-order issue, one instruction per VLIW slot per cycle, a 4-cycle
 * architectural latency on vector results (the paper's motivation for
 * loop unrolling), and a global-memory interface that moves data in
 * 256 B granules at a bounded per-TPC rate.
 */

#ifndef VESPERA_TPC_PIPELINE_H
#define VESPERA_TPC_PIPELINE_H

#include "common/types.h"
#include "hw/device_spec.h"
#include "tpc/program.h"

namespace vespera::tpc {

/** Microarchitectural parameters of the simulated TPC. */
struct TpcParams
{
    Hertz clock = 1.79e9;
    /// Architectural latency of vector-ALU results (paper: 4 cycles).
    int vectorLatency = 4;
    /// Latency of scalar-unit results.
    int scalarLatency = 2;
    /// Load-to-use latency for streaming global loads (prefetched).
    int loadLatencyStream = 6;
    /// Load-to-use latency for random global loads (full HBM round trip).
    int loadLatencyRandom = 130;
    /// Load-to-use latency for TPC-local memory.
    int loadLatencyLocal = 2;
    /// Sustained cycles per 256 B global-memory transaction per TPC.
    double memIssueIntervalCycles = 2.2;
    /// Minimum global access granularity.
    Bytes granule = 256;

    /** Parameters derived from the Gaudi-2 spec. */
    static TpcParams forGaudi2();
};

/** Timing outcome of one TPC's trace. */
struct PipelineResult
{
    double cycles = 0;
    Seconds time = 0;
    Flops flops = 0;
    /// Cycles in which no instruction issued (dependency latency,
    /// slot conflicts, or memory-interface backpressure) — the stat
    /// the paper's unrolling analysis is about.
    double stallCycles = 0;
    /// Instructions issued.
    std::uint64_t instructions = 0;
    /// Global bus bytes moved (payload rounded up to granules).
    Bytes busBytes = 0;
    /// Granule transactions issued by random accesses (bus traffic).
    std::uint64_t randomTxns = 0;
    /// Random accesses issued (scattered requests; each pays one DRAM
    /// activation regardless of how many granules it spans).
    std::uint64_t randomAccesses = 0;
    /// Little's-law estimate of this TPC's in-flight random requests.
    double memConcurrency = 0;
};

/** Why an instruction could not issue in the cycle after its
 *  predecessor (the constraint that set its issue time). */
enum class StallCause : std::uint8_t {
    None,       ///< Issued back-to-back; no stall.
    Dependency, ///< Waited on a source value's result latency.
    SlotBusy,   ///< Waited for its VLIW slot to free up.
    Memory,     ///< Waited on global-memory interface backpressure.
};

/** Per-instruction issue record (produced alongside PipelineResult). */
struct IssuedInstr
{
    double issueCycle = 0;    ///< Cycle the instruction issued.
    double stallCycles = 0;   ///< Idle cycles before this issue.
    StallCause cause = StallCause::None; ///< Binding constraint.
    /// Source value id whose ready time bound the issue (Dependency
    /// stalls only); -1 otherwise.
    std::int32_t criticalSrc = -1;
};

/**
 * Full issue schedule of one trace. `instrs[i]` corresponds to
 * `program.instrs()[i]`; the per-instruction stalls plus `drainStall`
 * sum exactly to PipelineResult::stallCycles, which is what lets the
 * static analyzer attribute every stall cycle to a cause without a
 * second, drift-prone copy of the timing rules.
 */
struct IssueTrace
{
    std::vector<IssuedInstr> instrs;
    /// Result/memory drain time past the last issue (also stall).
    double drainStall = 0;
};

/**
 * Evaluate the trace under the timing model. When `trace` is non-null
 * it is filled with the per-instruction issue schedule.
 */
PipelineResult evaluatePipeline(const Program &program,
                                const TpcParams &params,
                                IssueTrace *trace = nullptr);

/// @name Timing-rule hooks shared with the analyzers.
/// Exactly the rules evaluatePipeline applies, exported so the trace
/// analyzer (src/analysis/) and the static cost model
/// (src/analysis/static/) consume one definition instead of keeping
/// drift-prone copies.
/// @{

/** True when `instr` touches memory at all (loads, stores, scalar
 *  accesses carrying payload bytes — local or global). */
bool isMemAccess(const Instr &instr);

/** True when `instr` moves bytes through the global-memory interface
 *  (isMemAccess and not TPC-local). */
bool isGlobalMemAccess(const Instr &instr);

/** Cycles an in-order consumer waits for `instr`'s result: the vector/
 *  scalar ALU latency, or the access-class load-to-use latency for
 *  loads. 0 for results nobody can wait on (stores, dst < 0 loads). */
double resultLatency(const Instr &instr, const TpcParams &params);

/// @}

} // namespace vespera::tpc

#endif // VESPERA_TPC_PIPELINE_H
