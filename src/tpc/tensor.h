/**
 * @file
 * Simulated global-memory tensor for TPC-C kernel execution.
 *
 * Tensors live in simulated device global memory (HBM or on-chip shared
 * memory) and are accessed by TPC programs through the load/store
 * intrinsics in tpc::TpcContext. Storage is FP32 regardless of the
 * declared data type; the declared type drives sizing and timing only
 * (BF16 numerics are irrelevant to the paper's performance analysis).
 *
 * Dimension 0 is the fastest-varying (contiguous) dimension, matching
 * the TPC-C convention where the "depth" dimension determines memory
 * access granularity (Figure 3 of the paper).
 */

#ifndef VESPERA_TPC_TENSOR_H
#define VESPERA_TPC_TENSOR_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace vespera::tpc {

/** Up-to-5-dimensional coordinate, matching TPC-C's int5. */
using Int5 = std::array<std::int64_t, 5>;

/** A tensor resident in simulated device global memory. */
class Tensor
{
  public:
    /** Construct a zero-filled tensor. Trailing dims default to 1. */
    Tensor(std::vector<std::int64_t> shape, DataType dt);

    std::int64_t dim(int d) const { return shape_.at(d); }
    int rank() const { return static_cast<int>(shape_.size()); }
    std::int64_t numElements() const { return numElements_; }
    DataType dtype() const { return dtype_; }
    Bytes bytes() const { return numElements_ * dtypeSize(dtype_); }

    /** Flatten a coordinate (dim 0 fastest) to an element offset. */
    std::int64_t flatten(const Int5 &coord) const;

    /** Element access by flat offset, bounds-checked. */
    float &at(std::int64_t flat);
    float at(std::int64_t flat) const;

    /** Element access by coordinate. */
    float &at(const Int5 &coord) { return at(flatten(coord)); }
    float at(const Int5 &coord) const { return at(flatten(coord)); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with values from a callable f(flat_index) -> float. */
    template <typename F>
    void
    fill(F &&f)
    {
        for (std::int64_t i = 0; i < numElements_; i++)
            data_[static_cast<std::size_t>(i)] = f(i);
    }

  private:
    std::vector<std::int64_t> shape_;
    std::vector<std::int64_t> strides_; ///< In elements; stride[0] == 1.
    std::int64_t numElements_;
    DataType dtype_;
    std::vector<float> data_;
};

} // namespace vespera::tpc

#endif // VESPERA_TPC_TENSOR_H
