/**
 * @file
 * Per-TPC instruction trace container with flop / traffic accounting.
 */

#ifndef VESPERA_TPC_PROGRAM_H
#define VESPERA_TPC_PROGRAM_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mem/arena.h"
#include "obs/selfprof.h"
#include "tpc/isa.h"

namespace vespera::tpc {

/** The recorded instruction stream of one TPC's kernel invocation. */
class Program
{
  public:
    /** Append an instruction, returning its position. */
    std::size_t
    append(const Instr &instr)
    {
        // Trace-vector growth is the simulator's dominant allocation
        // source; report reallocations to the self-profile (one branch
        // on a relaxed atomic when --selfprof is off).
        if (obs::SelfProf::instance().enabled()) {
            const std::size_t cap = instrs_.capacity();
            instrs_.push_back(instr);
            obs::selfRecordGrowth(instrs_, cap);
        } else {
            instrs_.push_back(instr);
        }
        return instrs_.size() - 1;
    }

    /** Allocate a fresh SSA value id. */
    std::int32_t newValue() { return nextValue_++; }

    /// Trace storage: arena-backed when the program is recorded
    /// inside a mem::ScopedArena (the dispatcher's hot path), heap
    /// otherwise — including whenever a trace observer may copy the
    /// program into long-lived storage.
    using InstrVec = std::vector<Instr, mem::ArenaAllocator<Instr>>;

    const InstrVec &instrs() const { return instrs_; }
    std::int32_t numValues() const { return nextValue_; }
    bool empty() const { return instrs_.empty(); }

    /// @name Diagnostic provenance (who recorded this trace).
    /// @{
    /** Source-kernel tag; diagnostics name this, not an instr index. */
    void setKernelName(std::string name) { kernelName_ = std::move(name); }
    const std::string &kernelName() const { return kernelName_; }

    /**
     * Intern an op label ("v_ld_tnsr", a kernel phase name, ...) and
     * return its index for Instr::opLabel. Idempotent per string.
     */
    std::int16_t internLabel(std::string_view label);

    /** Label text for an Instr::opLabel index ("" for -1/invalid). */
    const std::string &label(std::int16_t index) const;

    /** The interned label table (IR-lifting hook: analysis/static/). */
    const std::vector<std::string> &labels() const { return labels_; }
    /// @}

    /** Total useful flops executed by the trace. */
    Flops flops() const;

    /** Useful payload bytes moved to/from global memory, by class. */
    Bytes streamBytes() const;
    Bytes randomBytes() const;

    /** Number of random-access global transactions (for MLP modeling). */
    std::uint64_t randomTransactions(Bytes granule) const;

    /** Bus bytes for the given granule (payload rounded up per access). */
    Bytes busBytes(Bytes granule) const;

    /** Instruction-mix statistics (for kernel tuning / debugging). */
    struct Stats
    {
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t vectorOps = 0;
        std::uint64_t scalarOps = 0;
        std::uint64_t streamAccesses = 0;
        std::uint64_t randomAccesses = 0;
        std::uint64_t localAccesses = 0;

        std::uint64_t
        total() const
        {
            return loads + stores + vectorOps + scalarOps;
        }
    };

    Stats stats() const;

  private:
    InstrVec instrs_;
    std::int32_t nextValue_ = 0;
    std::string kernelName_;
    std::vector<std::string> labels_;
};

} // namespace vespera::tpc

#endif // VESPERA_TPC_PROGRAM_H
