/**
 * @file
 * Instruction trace representation for the simulated TPC.
 *
 * Each TPC-C intrinsic invoked by a kernel appends one Instr to the
 * per-TPC Program trace; tpc::evaluatePipeline later replays the trace
 * against the VLIW timing model.
 */

#ifndef VESPERA_TPC_ISA_H
#define VESPERA_TPC_ISA_H

#include <cstdint>

#include "common/types.h"

namespace vespera::tpc {

/** VLIW issue slots of the TPC (Figure 1: load, store, scalar, vector). */
enum class Slot : std::uint8_t {
    Load,
    Store,
    Vector,
    Scalar,
};

constexpr int numSlots = 4;

/** Memory access locality class for loads/stores. */
enum class Access : std::uint8_t {
    Stream,  ///< Sequential addresses; HW prefetch hides HBM latency.
    Random,  ///< Data-dependent addresses (gather/scatter); full latency.
    Local,   ///< TPC-private scalar/vector local memory.
};

/** One traced instruction. Value ids are SSA: every result is fresh. */
struct Instr
{
    Slot slot;
    std::int32_t dst = -1;        ///< Result value id; -1 if none.
    std::int32_t src0 = -1;       ///< Operand value ids; -1 if unused.
    std::int32_t src1 = -1;
    std::int32_t src2 = -1;
    Bytes memBytes = 0;           ///< Useful payload for load/store.
    Access access = Access::Stream;
    float flopsPerLane = 0;       ///< 1 = add/mul, 2 = mac, 0 otherwise.
    std::int32_t lanes = 0;       ///< Vector lanes carried.

    /// @name Provenance, consumed by the static analyzer (tpc::analysis).
    /// @{
    /// Byte offset of the first byte accessed within the stream named
    /// by `memStream`; -1 when unknown (hand-built traces).
    std::int64_t memOffset = -1;
    /// Opaque id of the tensor / local-memory region accessed; 0 when
    /// unknown. Offsets are only comparable within one stream.
    std::uint32_t memStream = 0;
    /// Index into the owning Program's interned label table (the
    /// intrinsic name or a kernel-set phase label); -1 when untagged.
    std::int16_t opLabel = -1;
    /// @}
};

} // namespace vespera::tpc

#endif // VESPERA_TPC_ISA_H
