#include "tpc/pipeline.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "obs/counters.h"
#include "obs/profiler.h"

namespace vespera::tpc {

TpcParams
TpcParams::forGaudi2()
{
    TpcParams p;
    p.clock = hw::gaudi2Spec().vectorClock;
    p.vectorLatency = hw::gaudi2Spec().vectorInstrLatency;
    return p;
}

bool
isMemAccess(const Instr &instr)
{
    return instr.slot == Slot::Load || instr.slot == Slot::Store ||
           (instr.slot == Slot::Scalar && instr.memBytes > 0);
}

bool
isGlobalMemAccess(const Instr &instr)
{
    return isMemAccess(instr) && instr.access != Access::Local;
}

double
resultLatency(const Instr &instr, const TpcParams &params)
{
    if (instr.slot == Slot::Store)
        return 0;
    if (isMemAccess(instr)) {
        if (instr.dst < 0)
            return 0;
        if (instr.access == Access::Local)
            return params.loadLatencyLocal;
        return instr.access == Access::Random
                   ? params.loadLatencyRandom
                   : params.loadLatencyStream;
    }
    switch (instr.slot) {
      case Slot::Vector:
        return params.vectorLatency;
      case Slot::Scalar:
        return params.scalarLatency;
      case Slot::Load:
      case Slot::Store:
        break;
    }
    return 0;
}

PipelineResult
evaluatePipeline(const Program &program, const TpcParams &params,
                 IssueTrace *trace)
{
    vassert(params.clock > 0 && params.granule > 0, "bad TPC parameters");
    if (trace != nullptr) {
        trace->instrs.clear();
        trace->instrs.reserve(program.instrs().size());
        trace->drainStall = 0;
    }

    // Per-SSA-value ready times.
    std::vector<double> ready(static_cast<std::size_t>(program.numValues()),
                              0.0);
    double slot_free[numSlots] = {0, 0, 0, 0};
    double mem_next_free = 0;   ///< Global-memory interface availability.
    double last_issue = 0;      ///< In-order constraint.
    double completion = 0;

    PipelineResult r;

    // Counter-track sampling of cumulative stall cycles (only when a
    // trace was requested; one check per call, not per instruction).
    obs::Profiler &profiler = obs::Profiler::instance();
    const bool sampling = profiler.enabled();
    const std::size_t sample_every = 64;
    std::size_t since_sample = 0;

    for (const Instr &instr : program.instrs()) {
        double t = last_issue;
        StallCause cause = StallCause::None;
        std::int32_t critical_src = -1;
        if (slot_free[static_cast<int>(instr.slot)] > t) {
            t = slot_free[static_cast<int>(instr.slot)];
            cause = StallCause::SlotBusy;
        }
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src >= 0 && ready[static_cast<std::size_t>(src)] > t) {
                t = ready[static_cast<std::size_t>(src)];
                cause = StallCause::Dependency;
                critical_src = src;
            }
        }

        const double result_latency = resultLatency(instr, params);

        if (isGlobalMemAccess(instr)) {
            // Global memory: every access moves whole granules through
            // the per-TPC memory interface at a bounded sustained rate.
            const std::uint64_t txns =
                (instr.memBytes + params.granule - 1) / params.granule;
            if (mem_next_free > t) {
                t = mem_next_free;
                cause = StallCause::Memory;
                critical_src = -1;
            }
            mem_next_free = t + txns * params.memIssueIntervalCycles;
            r.busBytes += txns * params.granule;
            if (instr.access == Access::Random) {
                r.randomTxns += txns;
                r.randomAccesses++;
            }
        }

        if (instr.dst >= 0)
            ready[static_cast<std::size_t>(instr.dst)] = t + result_latency;

        // Cycles between the previous issue and this one in which no
        // instruction entered the pipeline are stalls.
        const double stall = t > last_issue + 1 ? t - last_issue - 1 : 0;
        r.stallCycles += stall;
        if (trace != nullptr) {
            IssuedInstr rec;
            rec.issueCycle = t;
            rec.stallCycles = stall;
            rec.cause = stall > 0 ? cause : StallCause::None;
            rec.criticalSrc =
                rec.cause == StallCause::Dependency ? critical_src : -1;
            trace->instrs.push_back(rec);
        }
        r.instructions++;
        if (sampling && ++since_sample >= sample_every) {
            since_sample = 0;
            profiler.sample("tpc.stall_cycles", t / params.clock,
                            r.stallCycles);
        }

        slot_free[static_cast<int>(instr.slot)] = t + 1;
        last_issue = t;
        completion = std::max(completion, t + std::max(result_latency, 1.0));
    }

    r.cycles = std::max(completion, mem_next_free);
    // Drain time past the last issue also counts as stall.
    const double drain = std::max(0.0, r.cycles - last_issue - 1);
    r.stallCycles += drain;
    if (trace != nullptr && !program.instrs().empty())
        trace->drainStall = drain;
    r.time = r.cycles / params.clock;
    r.flops = program.flops();
    if (r.cycles > 0) {
        r.memConcurrency = static_cast<double>(r.randomAccesses) *
                           params.loadLatencyRandom / r.cycles;
    }
    if (sampling) {
        profiler.sample("tpc.stall_cycles", r.cycles / params.clock,
                        r.stallCycles);
    }

    auto &registry = obs::CounterRegistry::instance();
    static obs::Counter &instrs = registry.counter("tpc.instructions");
    static obs::Counter &cycles = registry.counter("tpc.cycles");
    static obs::Counter &stalls = registry.counter("tpc.stall_cycles");
    static obs::Counter &bus = registry.counter("tpc.bus_bytes");
    static obs::Counter &rand = registry.counter("tpc.random_accesses");
    instrs.add(static_cast<double>(r.instructions));
    cycles.add(r.cycles);
    stalls.add(r.stallCycles);
    bus.add(static_cast<double>(r.busBytes));
    rand.add(static_cast<double>(r.randomAccesses));
    return r;
}

} // namespace vespera::tpc
