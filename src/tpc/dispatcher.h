/**
 * @file
 * Multi-TPC kernel launcher.
 *
 * Mirrors the Gaudi runtime's index-space distribution (Section 2.2):
 * the workload's index space is partitioned along one dimension across
 * the chip's 24 TPCs; each TPC executes the same kernel over its slice.
 * The dispatcher runs each TPC's trace through the pipeline model and
 * combines per-TPC times with the chip-level HBM bandwidth bound.
 *
 * When the runtime pool is parallel (bench `--threads N`), each TPC
 * engine simulates its slice on its own worker; the chip-level
 * reduction always runs in TPC order, so results and counter totals
 * are bit-identical at any thread count (docs/runtime.md). Kernels
 * must confine writes to their assigned index-space slice — which the
 * TPC programming model already requires on real hardware.
 */

#ifndef VESPERA_TPC_DISPATCHER_H
#define VESPERA_TPC_DISPATCHER_H

#include <functional>
#include <string>

#include "hw/device_spec.h"
#include "mem/hbm.h"
#include "tpc/context.h"
#include "tpc/pipeline.h"

namespace vespera::tpc {

/** The grid over which a kernel is distributed (up to 5 dims). */
struct IndexSpace
{
    Int5 size{1, 1, 1, 1, 1};

    std::int64_t
    members() const
    {
        std::int64_t n = 1;
        for (auto s : size)
            n *= s;
        return n;
    }
};

/** A TPC kernel: a callable receiving the per-TPC context. */
using Kernel = std::function<void(TpcContext &)>;

/** Launch configuration. */
struct LaunchParams
{
    /// TPCs to use (weak-scaling experiments sweep this).
    int numTpcs = 24;
    /// Index-space dimension split across TPCs.
    int partitionDim = 1;
    /// Default global access width handed to the context.
    Bytes vectorBytes = 256;
    /// Per-TPC timing parameters.
    TpcParams tpc = TpcParams::forGaudi2();
    /// Source-kernel tag stamped onto each TPC's Program so analyzer
    /// diagnostics name the offending kernel, not an instr index.
    std::string kernelName;
};

/** Chip-level outcome of a kernel launch. */
struct LaunchResult
{
    Seconds time = 0;            ///< End-to-end incl. launch overhead.
    Seconds slowestTpcTime = 0;  ///< Pipeline-limited component.
    Seconds memoryBoundTime = 0; ///< Chip HBM bandwidth bound.
    Flops totalFlops = 0;
    Bytes usefulBytes = 0;       ///< Payload moved (no granule padding).
    Bytes busBytes = 0;          ///< Granule-rounded bus traffic.
    double achievedFlopsPerSec = 0;
    double hbmUtilization = 0;   ///< usefulBytes / (time x peak BW).
    int activeTpcs = 0;
    Bytes localMemHighWater = 0; ///< Max per-TPC local memory footprint.
};

/**
 * Observer invoked with every per-TPC Program the dispatcher records,
 * before timing evaluation. Used by the static analyzer / vespera-lint
 * to capture kernel traces without changing kernel entry points. No
 * synchronization is provided: installing an observer forces the
 * dispatcher onto its serial per-TPC path even when the runtime pool
 * is parallel, so observers always see TPCs one at a time, in order.
 */
using TraceObserver = std::function<void(const Program &, int tpc_index)>;

/** Install a process-wide trace observer; returns the previous one. */
TraceObserver setTraceObserver(TraceObserver observer);

/** RAII installation of a trace observer (restores the previous). */
class ScopedTraceObserver
{
  public:
    explicit ScopedTraceObserver(TraceObserver observer)
        : prev_(setTraceObserver(std::move(observer)))
    {
    }
    ~ScopedTraceObserver() { setTraceObserver(std::move(prev_)); }
    ScopedTraceObserver(const ScopedTraceObserver &) = delete;
    ScopedTraceObserver &operator=(const ScopedTraceObserver &) = delete;

  private:
    TraceObserver prev_;
};

/** Launches kernels onto the simulated Gaudi-2 TPC array. */
class TpcDispatcher
{
  public:
    explicit TpcDispatcher(const hw::DeviceSpec &spec = hw::gaudi2Spec());

    /** Run `kernel` over `space` with the given launch parameters. */
    LaunchResult launch(const Kernel &kernel, const IndexSpace &space,
                        const LaunchParams &params) const;

    const mem::HbmModel &hbm() const { return hbm_; }
    const hw::DeviceSpec &spec() const { return spec_; }

  private:
    const hw::DeviceSpec &spec_;
    mem::HbmModel hbm_;
};

} // namespace vespera::tpc

#endif // VESPERA_TPC_DISPATCHER_H
