#include "tpc/context.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vespera::tpc {

TpcContext::TpcContext(Program &program, const MemberRange &range,
                       Bytes default_vector_bytes, Bytes local_memory_bytes)
    : program_(program), range_(range),
      defaultVectorBytes_(default_vector_bytes),
      localMemoryBytes_(local_memory_bytes),
      localMem_(local_memory_bytes / 4, 0.0f)
{
    vassert(default_vector_bytes > 0, "zero vector width");
}

namespace {
/// Instr::memStream id of the TPC-local scratchpad.
constexpr std::uint32_t localMemStream = 1;
} // namespace

void
TpcContext::setOpLabel(std::string_view label)
{
    userLabel_ = label.empty() ? -1 : program_.internLabel(label);
}

std::int16_t
TpcContext::opLabel(const char *intrinsic)
{
    if (userLabel_ >= 0)
        return userLabel_;
    return program_.internLabel(intrinsic);
}

std::uint32_t
TpcContext::streamId(const void *key)
{
    auto [it, inserted] = streams_.try_emplace(key, nextStream_);
    if (inserted)
        nextStream_++;
    return it->second;
}

Vec
TpcContext::v_ld_tnsr(const Int5 &coord, const Tensor &t, Bytes bytes,
                      Access access)
{
    if (bytes == 0)
        bytes = defaultVectorBytes_;
    const Bytes es = dtypeSize(t.dtype());
    vassert(bytes >= es, "load smaller than one element");
    const auto lanes = static_cast<std::int64_t>(bytes / es);

    Vec v;
    v.id = program_.newValue();
    v.lanes.resize(static_cast<std::size_t>(lanes), 0.0f);
    const std::int64_t base = t.flatten(coord);
    const std::int64_t limit = std::min(lanes, t.numElements() - base);
    for (std::int64_t i = 0; i < limit; i++)
        v.lanes[static_cast<std::size_t>(i)] = t.at(base + i);

    Instr instr;
    instr.slot = Slot::Load;
    instr.dst = v.id;
    instr.memBytes = bytes;
    instr.access = access;
    instr.lanes = static_cast<std::int32_t>(lanes);
    instr.memOffset = base * static_cast<std::int64_t>(es);
    instr.memStream = streamId(t.data());
    instr.opLabel = opLabel("v_ld_tnsr");
    program_.append(instr);
    return v;
}

void
TpcContext::v_st_tnsr(const Int5 &coord, Tensor &t, const Vec &v,
                      Access access)
{
    vassert(v.id >= 0, "storing an uninitialized vector");
    const std::int64_t base = t.flatten(coord);
    const std::int64_t limit =
        std::min<std::int64_t>(v.laneCount(), t.numElements() - base);
    for (std::int64_t i = 0; i < limit; i++)
        t.at(base + i) = v.lanes[static_cast<std::size_t>(i)];

    Instr instr;
    instr.slot = Slot::Store;
    instr.src0 = v.id;
    instr.memBytes = static_cast<Bytes>(v.laneCount()) *
                     dtypeSize(t.dtype());
    instr.access = access;
    instr.lanes = v.laneCount();
    instr.memOffset =
        base * static_cast<std::int64_t>(dtypeSize(t.dtype()));
    instr.memStream = streamId(t.data());
    instr.opLabel = opLabel("v_st_tnsr");
    program_.append(instr);
}

Vec
TpcContext::binaryOp(const Vec &a, const Vec &b, float flops_per_lane,
                     float (*op)(float, float), const char *name)
{
    vassert(a.laneCount() == b.laneCount(),
            "lane mismatch: %d vs %d", a.laneCount(), b.laneCount());
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = op(a.lanes[i], b.lanes[i]);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.src1 = b.id;
    instr.flopsPerLane = flops_per_lane;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel(name);
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_add(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f, [](float x, float y) { return x + y; },
                    "v_add");
}

Vec
TpcContext::v_sub(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f, [](float x, float y) { return x - y; },
                    "v_sub");
}

Vec
TpcContext::v_mul(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f, [](float x, float y) { return x * y; },
                    "v_mul");
}

Vec
TpcContext::v_max(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f,
                    [](float x, float y) { return std::max(x, y); },
                    "v_max");
}

Vec
TpcContext::v_mac(const Vec &a, const Vec &b, const Vec &acc)
{
    vassert(a.laneCount() == b.laneCount() &&
            a.laneCount() == acc.laneCount(),
            "lane mismatch in v_mac");
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = a.lanes[i] * b.lanes[i] + acc.lanes[i];

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.src1 = b.id;
    instr.src2 = acc.id;
    instr.flopsPerLane = 2.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_mac");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_mul_s(const Vec &a, float scalar)
{
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = a.lanes[i] * scalar;

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.flopsPerLane = 1.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_mul_s");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_mac_s(const Vec &a, float scalar, const Vec &acc)
{
    vassert(a.laneCount() == acc.laneCount(), "lane mismatch in v_mac_s");
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = a.lanes[i] * scalar + acc.lanes[i];

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.src1 = acc.id;
    instr.flopsPerLane = 2.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_mac_s");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_zero(int lanes)
{
    vassert(lanes > 0, "zero-lane vector");
    Vec r;
    r.id = program_.newValue();
    r.lanes.assign(static_cast<std::size_t>(lanes), 0.0f);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.lanes = lanes;
    instr.opLabel = opLabel("v_zero");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_exp(const Vec &a)
{
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = std::exp(a.lanes[i]);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    // Special-function unit: several flops worth of issue per lane.
    instr.flopsPerLane = 4.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_exp");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_reciprocal(const Vec &a)
{
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = 1.0f / a.lanes[i];

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.flopsPerLane = 2.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_reciprocal");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_rsqrt(const Vec &a)
{
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = 1.0f / std::sqrt(a.lanes[i]);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.flopsPerLane = 2.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_rsqrt");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_splat(float value, int lanes)
{
    vassert(lanes > 0, "zero-lane splat");
    Vec r;
    r.id = program_.newValue();
    r.lanes.assign(static_cast<std::size_t>(lanes), value);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.lanes = lanes;
    instr.opLabel = opLabel("v_splat");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_iota(int lanes)
{
    vassert(lanes > 0, "zero-lane iota");
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; i++)
        r.lanes[static_cast<std::size_t>(i)] = static_cast<float>(i);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.lanes = lanes;
    instr.opLabel = opLabel("v_iota");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_cmp_eq(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f,
                    [](float x, float y) { return x == y ? 1.0f : 0.0f; },
                    "v_cmp_eq");
}

Vec
TpcContext::v_cmp_lt(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f,
                    [](float x, float y) { return x < y ? 1.0f : 0.0f; },
                    "v_cmp_lt");
}

Vec
TpcContext::v_cmp_ge(const Vec &a, const Vec &b)
{
    return binaryOp(a, b, 1.0f,
                    [](float x, float y) { return x >= y ? 1.0f : 0.0f; },
                    "v_cmp_ge");
}

Vec
TpcContext::v_sel(const Vec &mask, const Vec &a, const Vec &b)
{
    vassert(mask.laneCount() == a.laneCount() &&
            mask.laneCount() == b.laneCount(),
            "lane mismatch in v_sel");
    Vec r;
    r.id = program_.newValue();
    r.lanes.resize(a.lanes.size());
    for (std::size_t i = 0; i < a.lanes.size(); i++)
        r.lanes[i] = mask.lanes[i] != 0.0f ? a.lanes[i] : b.lanes[i];

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = mask.id;
    instr.src1 = a.id;
    instr.src2 = b.id;
    instr.flopsPerLane = 1.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_sel");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_reduce_max(const Vec &a)
{
    vassert(a.laneCount() > 0, "reducing empty vector");
    Vec r;
    r.id = program_.newValue();
    float m = a.lanes[0];
    for (float v : a.lanes)
        m = std::max(m, v);
    r.lanes = {m};

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.flopsPerLane = 1.0f; // Tree reduction, ~1 op per lane.
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_reduce_max");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_reduce_add(const Vec &a)
{
    vassert(a.laneCount() > 0, "reducing empty vector");
    Vec r;
    r.id = program_.newValue();
    double s = 0;
    for (float v : a.lanes)
        s += v;
    r.lanes = {static_cast<float>(s)};

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.flopsPerLane = 1.0f;
    instr.lanes = a.laneCount();
    instr.opLabel = opLabel("v_reduce_add");
    program_.append(instr);
    return r;
}

Vec
TpcContext::v_broadcast(const Vec &a, int lanes)
{
    vassert(a.laneCount() >= 1 && lanes > 0, "bad broadcast");
    Vec r;
    r.id = program_.newValue();
    r.lanes.assign(static_cast<std::size_t>(lanes), a.lanes[0]);

    Instr instr;
    instr.slot = Slot::Vector;
    instr.dst = r.id;
    instr.src0 = a.id;
    instr.lanes = lanes;
    instr.opLabel = opLabel("v_broadcast");
    program_.append(instr);
    return r;
}

float
TpcContext::s_ld(const Int5 &coord, const Tensor &t, Access access)
{
    const float value = t.at(coord);

    Instr instr;
    instr.slot = Slot::Scalar;
    instr.dst = program_.newValue();
    instr.memBytes = dtypeSize(t.dtype());
    instr.access = access;
    instr.lanes = 1;
    instr.memOffset =
        t.flatten(coord) * static_cast<std::int64_t>(dtypeSize(t.dtype()));
    instr.memStream = streamId(t.data());
    instr.opLabel = opLabel("s_ld");
    program_.append(instr);
    return value;
}

void
TpcContext::v_st_local(std::int64_t elem_offset, const Vec &v)
{
    vassert(elem_offset >= 0, "negative local offset");
    const std::int64_t end = elem_offset + v.laneCount();
    vassert(static_cast<Bytes>(end) * 4 <= localMemoryBytes_,
            "local memory overflow: %lld lanes > %llu bytes",
            static_cast<long long>(end),
            static_cast<unsigned long long>(localMemoryBytes_));
    for (int i = 0; i < v.laneCount(); i++)
        localMem_[static_cast<std::size_t>(elem_offset + i)] =
            v.lanes[static_cast<std::size_t>(i)];
    localHighWater_ = std::max(localHighWater_, end);

    Instr instr;
    instr.slot = Slot::Store;
    instr.src0 = v.id;
    instr.memBytes = static_cast<Bytes>(v.laneCount()) * 4;
    instr.access = Access::Local;
    instr.lanes = v.laneCount();
    instr.memOffset = elem_offset * 4;
    instr.memStream = localMemStream;
    instr.opLabel = opLabel("v_st_local");
    program_.append(instr);
}

Vec
TpcContext::v_ld_local(std::int64_t elem_offset, int lanes)
{
    vassert(elem_offset >= 0 && lanes > 0, "bad local load");
    vassert(static_cast<Bytes>(elem_offset + lanes) * 4 <=
            localMemoryBytes_, "local memory read out of bounds");
    Vec v;
    v.id = program_.newValue();
    v.lanes.resize(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; i++)
        v.lanes[static_cast<std::size_t>(i)] =
            localMem_[static_cast<std::size_t>(elem_offset + i)];

    Instr instr;
    instr.slot = Slot::Load;
    instr.dst = v.id;
    instr.memBytes = static_cast<Bytes>(lanes) * 4;
    instr.access = Access::Local;
    instr.lanes = lanes;
    instr.memOffset = elem_offset * 4;
    instr.memStream = localMemStream;
    instr.opLabel = opLabel("v_ld_local");
    program_.append(instr);
    return v;
}

} // namespace vespera::tpc
