#include "tpc/tensor.h"

#include "common/logging.h"

namespace vespera::tpc {

Tensor::Tensor(std::vector<std::int64_t> shape, DataType dt)
    : shape_(std::move(shape)), dtype_(dt)
{
    vassert(!shape_.empty() && shape_.size() <= 5,
            "tensor rank must be 1..5, got %zu", shape_.size());
    numElements_ = 1;
    strides_.resize(shape_.size());
    for (std::size_t d = 0; d < shape_.size(); d++) {
        vassert(shape_[d] > 0, "non-positive tensor dim %zu", d);
        strides_[d] = numElements_;
        numElements_ *= shape_[d];
    }
    data_.assign(static_cast<std::size_t>(numElements_), 0.0f);
}

std::int64_t
Tensor::flatten(const Int5 &coord) const
{
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < shape_.size(); d++) {
        vassert(coord[d] >= 0 && coord[d] < shape_[d],
                "coordinate %lld out of bounds for dim %zu (size %lld)",
                static_cast<long long>(coord[d]), d,
                static_cast<long long>(shape_[d]));
        flat += coord[d] * strides_[d];
    }
    for (std::size_t d = shape_.size(); d < 5; d++) {
        vassert(coord[d] == 0, "nonzero coordinate beyond tensor rank");
    }
    return flat;
}

float &
Tensor::at(std::int64_t flat)
{
    vassert(flat >= 0 && flat < numElements_,
            "flat index %lld out of bounds (%lld elements)",
            static_cast<long long>(flat),
            static_cast<long long>(numElements_));
    return data_[static_cast<std::size_t>(flat)];
}

float
Tensor::at(std::int64_t flat) const
{
    vassert(flat >= 0 && flat < numElements_,
            "flat index %lld out of bounds (%lld elements)",
            static_cast<long long>(flat),
            static_cast<long long>(numElements_));
    return data_[static_cast<std::size_t>(flat)];
}

} // namespace vespera::tpc
