/**
 * @file
 * The kernel-facing TPC-C programming interface.
 *
 * Kernels are C++ callables receiving a TpcContext. The context exposes
 * the index-space slice assigned to this TPC plus intrinsics that mirror
 * the TPC-C SDK (v_ld_tnsr / v_st_tnsr / v_add / v_mac / ...). Each
 * intrinsic both executes functionally on simulated tensors and appends
 * an instruction to the TPC's Program trace for timing evaluation.
 *
 * Intrinsic names intentionally follow TPC-C spelling (lower_snake with
 * v_/s_ prefixes) rather than house style, to keep kernels recognizable
 * next to the paper's Figure 2(c) listing.
 */

#ifndef VESPERA_TPC_CONTEXT_H
#define VESPERA_TPC_CONTEXT_H

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "tpc/program.h"
#include "tpc/tensor.h"

namespace vespera::tpc {

/** An SSA vector value: trace id plus functional lane contents. */
struct Vec
{
    std::int32_t id = -1;
    std::vector<float> lanes;

    int laneCount() const { return static_cast<int>(lanes.size()); }
};

/** Half-open per-dimension slice of the index space owned by one TPC. */
struct MemberRange
{
    Int5 start{0, 0, 0, 0, 0};
    Int5 end{0, 0, 0, 0, 0};

    bool
    empty() const
    {
        for (int d = 0; d < 5; d++)
            if (end[d] <= start[d])
                return true;
        return false;
    }
};

/** Per-TPC execution context handed to kernels. */
class TpcContext
{
  public:
    /**
     * @param program Trace sink for this TPC.
     * @param range Index-space slice assigned to this TPC.
     * @param defaultVectorBytes Default global access width (256 B is
     *        the recommended granularity; microbenchmarks sweep it).
     * @param localMemoryBytes TPC-private vector local memory capacity.
     */
    TpcContext(Program &program, const MemberRange &range,
               Bytes default_vector_bytes = 256,
               Bytes local_memory_bytes = 80 * 1024);

    /// @name Index-space queries (get_index_space_information()).
    /// @{
    std::int64_t memberStart(int dim) const { return range_.start.at(dim); }
    std::int64_t memberEnd(int dim) const { return range_.end.at(dim); }
    /// @}

    /// @name Global-memory vector intrinsics.
    /// @{
    /**
     * Load `bytes` (default: the context's vector width) starting at
     * `coord`. Reads past the tensor end are clamped and zero-filled.
     */
    Vec v_ld_tnsr(const Int5 &coord, const Tensor &t, Bytes bytes = 0,
                  Access access = Access::Stream);

    /** Store the vector starting at `coord`; clamped at the tensor end. */
    void v_st_tnsr(const Int5 &coord, Tensor &t, const Vec &v,
                   Access access = Access::Stream);
    /// @}

    /// @name Vector ALU intrinsics (one VLIW vector-slot issue each).
    /// @{
    Vec v_add(const Vec &a, const Vec &b);
    Vec v_sub(const Vec &a, const Vec &b);
    Vec v_mul(const Vec &a, const Vec &b);
    Vec v_max(const Vec &a, const Vec &b);
    /** a * b + acc (MAC: two flops per lane). */
    Vec v_mac(const Vec &a, const Vec &b, const Vec &acc);
    /** a * scalar. */
    Vec v_mul_s(const Vec &a, float scalar);
    /** a * scalar + acc. */
    Vec v_mac_s(const Vec &a, float scalar, const Vec &acc);
    /** Zero vector of `lanes` lanes (register init; vector slot). */
    Vec v_zero(int lanes);
    /** Element-wise exponential (multi-cycle special-function op). */
    Vec v_exp(const Vec &a);
    /** Element-wise reciprocal. */
    Vec v_reciprocal(const Vec &a);
    /** Element-wise reciprocal square root. */
    Vec v_rsqrt(const Vec &a);
    /** Immediate constant splat into a `lanes`-wide register. */
    Vec v_splat(float value, int lanes);
    /** Lane-index vector: lane i holds the value i (TPC-C's
     *  read_lane_id equivalent, used to build predication masks). */
    Vec v_iota(int lanes);
    /** Lane-wise compares producing a 0.0/1.0 mask vector. */
    Vec v_cmp_eq(const Vec &a, const Vec &b);
    Vec v_cmp_lt(const Vec &a, const Vec &b);
    Vec v_cmp_ge(const Vec &a, const Vec &b);
    /** Lane-wise select: mask != 0 ? a : b (TPC-C v_sel_*). */
    Vec v_sel(const Vec &mask, const Vec &a, const Vec &b);
    /** Cross-lane maximum; returns a single-lane vector. */
    Vec v_reduce_max(const Vec &a);
    /** Cross-lane sum; returns a single-lane vector. */
    Vec v_reduce_add(const Vec &a);
    /** Broadcast lane 0 of `a` to a `lanes`-wide vector. */
    Vec v_broadcast(const Vec &a, int lanes);
    /// @}

    /// @name Scalar intrinsics.
    /// @{
    /** Scalar load of one element (e.g., an embedding index). */
    float s_ld(const Int5 &coord, const Tensor &t,
               Access access = Access::Random);
    /// @}

    /// @name TPC-local memory (80 KB vector local memory).
    /// @{
    /** Store a vector to local memory at `elem_offset` (in lanes). */
    void v_st_local(std::int64_t elem_offset, const Vec &v);
    /** Load `lanes` lanes from local memory at `elem_offset`. */
    Vec v_ld_local(std::int64_t elem_offset, int lanes);
    /** Peak local-memory footprint observed, in bytes (4 B per lane). */
    Bytes localHighWater() const { return localHighWater_ * 4; }
    /// @}

    Bytes defaultVectorBytes() const { return defaultVectorBytes_; }
    Bytes localMemoryBytes() const { return localMemoryBytes_; }

    /// @name Diagnostic labeling (tpc::analysis provenance).
    /// @{
    /**
     * Tag subsequently recorded instructions with a kernel phase label
     * (e.g. "phase2:exp-sum") instead of the default intrinsic name.
     * Pass "" to revert to intrinsic-name labels.
     */
    void setOpLabel(std::string_view label);
    /// @}

  private:
    Vec binaryOp(const Vec &a, const Vec &b, float flops_per_lane,
                 float (*op)(float, float), const char *name);

    /// Label recorded on the next instruction: the user phase label
    /// when set, otherwise the intrinsic's own name.
    std::int16_t opLabel(const char *intrinsic);

    /// Stable per-context id for the tensor / local-memory stream a
    /// memory instruction touches (Instr::memStream).
    std::uint32_t streamId(const void *key);

    Program &program_;
    MemberRange range_;
    Bytes defaultVectorBytes_;
    Bytes localMemoryBytes_;
    std::vector<float> localMem_;
    std::int64_t localHighWater_ = 0;
    std::int16_t userLabel_ = -1;
    std::map<const void *, std::uint32_t> streams_;
    std::uint32_t nextStream_ = 2; ///< 1 is reserved for local memory.
};

} // namespace vespera::tpc

#endif // VESPERA_TPC_CONTEXT_H
