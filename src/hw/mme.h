/**
 * @file
 * Analytical model of Gaudi-2's Matrix Multiplication Engines (MMEs).
 *
 * The two MMEs form an output-stationary MAC array of 2x(256x256) units
 * that the graph compiler can reconfigure at runtime into alternative
 * geometries (512x256, 1024x128, ...) so the array better matches the
 * target GEMM's (M,K,N) shape (paper Section 3.2, Figures 6-7). This
 * model enumerates candidate geometries, costs each one, and picks the
 * fastest — exactly the decision the Gaudi graph compiler makes. A
 * fixed-geometry entry point reproduces the non-configurable baseline of
 * Figure 7(c).
 */

#ifndef VESPERA_HW_MME_H
#define VESPERA_HW_MME_H

#include <vector>

#include "hw/device_spec.h"
#include "hw/gemm_cost.h"

namespace vespera::hw {

/**
 * One candidate MAC-array configuration: `count` independent arrays of
 * `height` x `width` MACs each. Geometries whose total MAC count is
 * below the physical maximum model power-gated operation.
 */
struct MmeGeometry
{
    int height;
    int width;
    int count;

    int totalMacs() const { return height * width * count; }

    std::string label() const;
};

/** Gaudi-2 MME cost model. */
class MmeModel
{
  public:
    explicit MmeModel(const DeviceSpec &spec = gaudi2Spec());

    /**
     * Cost a GEMM with the geometry chosen by the (modeled) graph
     * compiler: the candidate minimizing predicted time, tie-broken
     * toward fewer powered MACs.
     */
    GemmCost gemm(const GemmShape &shape, DataType dt) const;

    /**
     * Cost a GEMM with a fixed geometry — the non-configurable
     * output-stationary baseline used as the ablation in Figure 7(c).
     */
    GemmCost gemmWithGeometry(const GemmShape &shape, DataType dt,
                              const MmeGeometry &geom) const;

    /** Geometry the compiler would choose for this shape (Figure 7(a)). */
    MmeGeometry selectGeometry(const GemmShape &shape, DataType dt) const;

    /** Candidate geometries for a device with `mme_count` MME units. */
    static std::vector<MmeGeometry> buildGeometries(int mme_count);

    /** Gaudi-2's candidate set (two MME units). */
    static const std::vector<MmeGeometry> &candidateGeometries();

    /** The fixed 2x(256x256) configuration. */
    static MmeGeometry fixedGeometry() { return {256, 256, 2}; }

    const DeviceSpec &spec() const { return spec_; }

    /** Number of physical 256x256 MME units derived from the spec. */
    int mmeCount() const { return mmeCount_; }

  private:
    const DeviceSpec &spec_;
    int mmeCount_;
    std::vector<MmeGeometry> geometries_;
    /// Last geometry chosen by gemm(), for counting reconfiguration
    /// events (`mme.reconfigs`) the way the Gaudi profiler surfaces
    /// them. Telemetry only — never read by the cost math. Only ever
    /// touched serially: under a runtime capture the update is
    /// deferred to the outermost index-ordered replay (obs/capture.h),
    /// so the count is thread-count-invariant.
    mutable std::string lastGeometry_;

    /// Extra cycles charged per output tile (tile-switch bubbles).
    static constexpr double tileOverheadCycles_ = 24;
    /// Fraction of peak HBM bandwidth GEMM streaming achieves.
    static constexpr double gemmHbmEfficiency_ = 0.92;
    /// Multiplier on ideal operand traffic for imperfect SRAM reuse.
    static constexpr double trafficFactor_ = 1.10;
};

} // namespace vespera::hw

#endif // VESPERA_HW_MME_H
