#include "hw/device_spec.h"

#include "common/logging.h"

namespace vespera::hw {

namespace {

DeviceSpec
makeGaudi2()
{
    DeviceSpec s{};
    s.kind = DeviceKind::Gaudi2;
    s.matrixPeakBf16 = 432 * TFLOPS;
    s.vectorPeakBf16 = 11 * TFLOPS;
    s.hbmBandwidth = 2.46 * TB;
    s.hbmCapacity = 96 * GiB;
    s.sramCapacity = 48 * MiB;
    s.minAccessGranularity = 256;
    s.streamEfficiency = 0.82;
    s.randomEfficiency = 0.92;
    s.commBandwidthBidir = 600 * GB;
    s.tdp = 600;
    s.idlePower = 70;
    s.numVectorCores = 24;
    s.vectorLaneBits = 2048;
    // 24 TPCs x 128 BF16 lanes x 2 flops (MAC) x clk = 11 TFLOPS.
    s.vectorClock = s.vectorPeakBf16 / (24.0 * 128 * 2);
    s.vectorInstrLatency = 4;
    // 2 MMEs x 256x256 MACs x 2 flops x clk = 432 TFLOPS.
    s.matrixClock = s.matrixPeakBf16 / (2.0 * 256 * 256 * 2);
    s.fp32MatrixRatio = 0.25;
    s.launchOverhead = 4e-6;
    return s;
}

DeviceSpec
makeA100()
{
    DeviceSpec s{};
    s.kind = DeviceKind::A100;
    s.matrixPeakBf16 = 312 * TFLOPS;
    s.vectorPeakBf16 = 39 * TFLOPS;
    s.hbmBandwidth = 2.0 * TB;
    s.hbmCapacity = 80 * GiB;
    s.sramCapacity = 40 * MiB;
    s.minAccessGranularity = 32;
    s.streamEfficiency = 0.86;
    s.randomEfficiency = 0.88;
    s.commBandwidthBidir = 600 * GB;
    s.tdp = 400;
    s.idlePower = 65;
    s.numVectorCores = 108;
    // Model each SM's 4 processing blocks as a 32-lane fp32 SIMD each;
    // lane bits chosen so cores*lanes*2*clk = 39 TFLOPS BF16.
    s.vectorLaneBits = 4096; // 128 warp lanes x 32-bit, BF16 packs 2x.
    s.vectorClock = s.vectorPeakBf16 / (108.0 * 256 * 2);
    s.vectorInstrLatency = 4;
    s.matrixClock = 1.41 * GHz;
    s.fp32MatrixRatio = 0.5;
    s.launchOverhead = 3e-6;
    return s;
}

} // namespace

const DeviceSpec &
gaudi2Spec()
{
    static const DeviceSpec spec = makeGaudi2();
    return spec;
}

const DeviceSpec &
a100Spec()
{
    static const DeviceSpec spec = makeA100();
    return spec;
}

const DeviceSpec &
gaudi3Spec()
{
    static const DeviceSpec spec = [] {
        DeviceSpec s = makeGaudi2();
        // Chiplet-based scale-up of the same architecture.
        s.matrixPeakBf16 = 1835 * TFLOPS;
        s.vectorPeakBf16 = 29 * TFLOPS; // 64 TPCs at ~1.6x clock eff.
        s.hbmBandwidth = 3.7 * TB;
        s.hbmCapacity = 128 * GiB;
        s.sramCapacity = 96 * MiB;
        s.commBandwidthBidir = 1200 * GB; // 24 x 200 GbE.
        s.tdp = 900;
        s.idlePower = 110;
        s.numVectorCores = 64;
        s.vectorClock = s.vectorPeakBf16 / (64.0 * 128 * 2);
        // 8 MMEs of 256x256 MACs.
        s.matrixClock = s.matrixPeakBf16 / (8.0 * 256 * 256 * 2);
        return s;
    }();
    return spec;
}

DeviceSpec
withAccessGranularity(const DeviceSpec &spec, Bytes granule)
{
    vassert(granule > 0 && (granule & (granule - 1)) == 0,
            "granularity must be a power of two");
    DeviceSpec s = spec;
    s.minAccessGranularity = granule;
    return s;
}

const DeviceSpec &
deviceSpec(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Gaudi2:
        return gaudi2Spec();
      case DeviceKind::A100:
        return a100Spec();
    }
    vpanic("unknown device kind");
}

} // namespace vespera::hw
