/**
 * @file
 * Device power/energy model (the nvidia-smi / hl-smi substitute used for
 * the paper's energy-efficiency comparisons, Figures 11 and 13).
 *
 * Average board power is modeled as idle power plus per-engine dynamic
 * power scaled by each engine's time-weighted activity, capped at TDP.
 * The Gaudi MME term is additionally scaled by the fraction of the MAC
 * array that is powered, reflecting the paper's observation that Gaudi-2
 * power-gates inactive MME portions for small GEMM geometries.
 */

#ifndef VESPERA_HW_POWER_H
#define VESPERA_HW_POWER_H

#include "hw/device_spec.h"

namespace vespera::hw {

/** Time-weighted activity of each engine over a measurement interval. */
struct ActivityProfile
{
    /// Matrix engine (MME / Tensor Core) busy-and-utilized fraction.
    double matrixActivity = 0;
    /// Fraction of the MAC array powered while the matrix engine is
    /// active (1.0 on A100; geometry-dependent on Gaudi).
    double matrixMacFraction = 1.0;
    /// Vector engine (TPC / SIMD cores) activity.
    double vectorActivity = 0;
    /// HBM interface activity (achieved / peak bandwidth).
    double hbmActivity = 0;
};

/** Per-device power model. */
class PowerModel
{
  public:
    explicit PowerModel(const DeviceSpec &spec);

    /** Average board power for the given activity profile. */
    Watts averagePower(const ActivityProfile &activity) const;

    /** Energy consumed over `duration` at the given activity. */
    Joules
    energy(const ActivityProfile &activity, Seconds duration) const
    {
        return averagePower(activity) * duration;
    }

    Watts idlePower() const { return idle_; }

  private:
    const DeviceSpec &spec_;
    Watts idle_;
    Watts matrixMax_;
    Watts vectorMax_;
    Watts hbmMax_;
};

} // namespace vespera::hw

#endif // VESPERA_HW_POWER_H
