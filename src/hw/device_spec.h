/**
 * @file
 * Hardware specification constants for Intel Gaudi-2 and NVIDIA A100,
 * mirroring Table 1 of the paper plus the microarchitectural parameters
 * the paper's analysis depends on (access granularity, TPC/SM counts,
 * instruction latency, link provisioning).
 */

#ifndef VESPERA_HW_DEVICE_SPEC_H
#define VESPERA_HW_DEVICE_SPEC_H

#include "common/types.h"
#include "common/units.h"

namespace vespera::hw {

/**
 * Static description of one accelerator. All quantities are either taken
 * directly from Table 1 of the paper or derived from public documentation
 * as noted inline.
 */
struct DeviceSpec
{
    DeviceKind kind;

    /// Peak matrix-engine throughput for BF16 (MME / Tensor Cores).
    Flops matrixPeakBf16;
    /// Peak vector throughput for BF16 (TPCs / SIMD cores).
    Flops vectorPeakBf16;

    /// Off-chip HBM2E bandwidth and capacity.
    BytesPerSec hbmBandwidth;
    Bytes hbmCapacity;
    /// On-chip SRAM (Gaudi shared memory / A100 L2).
    Bytes sramCapacity;
    /// Minimum useful off-chip access granularity (Gaudi 256 B tensor
    /// access; A100 32 B sectors).
    Bytes minAccessGranularity;

    /// Fraction of peak HBM bandwidth achievable on pure streaming
    /// access (STREAM-like); captures refresh/command overheads.
    double streamEfficiency;
    /// Fraction of peak HBM bandwidth achievable on fully-parallel
    /// random accesses at ideal granularity.
    double randomEfficiency;

    /// Aggregate per-device bidirectional interconnect bandwidth
    /// (600 GB/s for both NVLink and 24x100 GbE RoCE).
    BytesPerSec commBandwidthBidir;

    /// Board power.
    Watts tdp;
    Watts idlePower;

    /// Vector-engine organization.
    int numVectorCores;       ///< 24 TPCs / 108 SMs.
    int vectorLaneBits;       ///< SIMD width in bits per core.
    Hertz vectorClock;        ///< Derived so cores*lanes*2*clk = peak.
    int vectorInstrLatency;   ///< Architectural latency, cycles (TPC: 4).

    /// Matrix-engine clock (derived from peak and MAC count).
    Hertz matrixClock;

    /// FP32 matrix throughput as a fraction of the BF16 peak. The
    /// A100 runs FP32 GEMMs on TF32 tensor cores at half rate; the
    /// Gaudi MME is BF16-native and synthesizes FP32 at quarter rate —
    /// one reason the paper's FP32 RecSys results favour A100 while
    /// BF16 LLM serving favours Gaudi-2.
    double fp32MatrixRatio;

    /// Kernel / graph launch overhead observed at the framework level.
    Seconds launchOverhead;

    /** Peak matrix throughput for the given data type. */
    Flops
    matrixPeak(DataType dt) const
    {
        return dt == DataType::FP32 ? matrixPeakBf16 * fp32MatrixRatio
                                    : matrixPeakBf16;
    }

    /** Peak vector throughput for the given data type. */
    Flops
    vectorPeak(DataType dt) const
    {
        // 2048-bit TPC vectors hold 128 BF16 or 64 FP32 lanes; A100 SIMD
        // BF16 similarly runs 2x FP32.
        return dt == DataType::FP32 ? vectorPeakBf16 / 2 : vectorPeakBf16;
    }

    /** Vector lanes per core for the given data type. */
    int
    vectorLanes(DataType dt) const
    {
        return vectorLaneBits / (8 * static_cast<int>(dtypeSize(dt)));
    }
};

/** Table 1 spec for Intel Gaudi-2. */
const DeviceSpec &gaudi2Spec();

/** Table 1 spec for NVIDIA A100 (80 GB SXM). */
const DeviceSpec &a100Spec();

/**
 * Projected Gaudi-3 specification (extension beyond the paper). The
 * paper's footnote 1 notes Gaudi-3's architecture is virtually
 * identical to Gaudi-2's but with higher compute and memory throughput
 * from its chiplet design; figures follow Intel's Gaudi-3 white paper
 * (1835 BF16 matrix TFLOPS, 64 TPCs, 128 GB HBM2E at 3.7 TB/s, 96 MB
 * SRAM, 24x200 GbE, 900 W). Used by the what-if benches only.
 */
const DeviceSpec &gaudi3Spec();

/** Lookup by device kind. */
const DeviceSpec &deviceSpec(DeviceKind kind);

/**
 * Copy of `spec` with a different minimum access granularity — the
 * what-if knob behind the paper's Key Takeaway #3 (what would Gaudi's
 * gather performance look like with A100-style 32 B sectors?).
 */
DeviceSpec withAccessGranularity(const DeviceSpec &spec, Bytes granule);

} // namespace vespera::hw

#endif // VESPERA_HW_DEVICE_SPEC_H
