/**
 * @file
 * Shared GEMM shape/cost descriptors used by the MME (Gaudi) and Tensor
 * Core (A100) matrix-engine models.
 */

#ifndef VESPERA_HW_GEMM_COST_H
#define VESPERA_HW_GEMM_COST_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace vespera::hw {

/** A (possibly batched) GEMM: C[M,N] = A[M,K] x B[K,N], `batch` times. */
struct GemmShape
{
    std::int64_t m = 1;
    std::int64_t k = 1;
    std::int64_t n = 1;
    std::int64_t batch = 1;

    Flops
    flops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n) * static_cast<double>(batch);
    }

    /** Bytes touched assuming each operand moves on/off chip once. */
    Bytes
    idealTraffic(DataType dt) const
    {
        const auto es = static_cast<double>(dtypeSize(dt));
        double bytes = es * batch *
            (static_cast<double>(m) * k + static_cast<double>(k) * n +
             static_cast<double>(m) * n);
        return static_cast<Bytes>(bytes);
    }
};

/** Outcome of costing one GEMM on a matrix engine. */
struct GemmCost
{
    Seconds time = 0;            ///< End-to-end, including launch overhead.
    Seconds computeTime = 0;     ///< Systolic/TC pipeline time.
    Seconds memoryTime = 0;      ///< HBM streaming time.
    Flops achievedFlops = 0;     ///< flops / time.
    double utilization = 0;      ///< achievedFlops / device peak.
    double activeMacFraction = 1; ///< Fraction of MAC array powered.
    std::string geometry;        ///< Chosen array geometry / tile label.

    bool memoryBound() const { return memoryTime > computeTime; }
};

} // namespace vespera::hw

#endif // VESPERA_HW_GEMM_COST_H
