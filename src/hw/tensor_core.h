/**
 * @file
 * Analytical model of A100 Tensor Core GEMM execution (the cuBLAS
 * comparator of Sections 3.2 and 3.5).
 *
 * cuBLAS decomposes a GEMM into CTA tiles scheduled across the 108 SMs;
 * performance is governed by tile-shape choice, wave quantization
 * (ceil(tiles/108)), a per-tile prologue/epilogue cost, and the HBM
 * bandwidth bound. The model enumerates the standard tile shapes and
 * picks the fastest, mirroring cuBLAS's heuristic kernel selection.
 */

#ifndef VESPERA_HW_TENSOR_CORE_H
#define VESPERA_HW_TENSOR_CORE_H

#include <vector>

#include "hw/device_spec.h"
#include "hw/gemm_cost.h"

namespace vespera::hw {

/** A100 Tensor Core GEMM cost model. */
class TensorCoreModel
{
  public:
    explicit TensorCoreModel(const DeviceSpec &spec = a100Spec());

    /** Cost a GEMM with the best CTA tile (cuBLAS-style selection). */
    GemmCost gemm(const GemmShape &shape, DataType dt) const;

    /** Cost a GEMM with one specific (tileM, tileN) CTA tile. */
    GemmCost gemmWithTile(const GemmShape &shape, DataType dt,
                          int tile_m, int tile_n) const;

    const DeviceSpec &spec() const { return spec_; }

    /** CTA tile shapes considered. */
    static const std::vector<std::pair<int, int>> &candidateTiles();

  private:
    const DeviceSpec &spec_;

    /// Per-CTA-tile prologue/epilogue cycles (smem staging, writeback).
    static constexpr double tileOverheadCycles_ = 700;
    /// Sustained fraction of per-SM tensor-core issue bandwidth.
    static constexpr double smEfficiency_ = 0.87;
    /// Fraction of peak HBM bandwidth GEMM streaming achieves.
    static constexpr double gemmHbmEfficiency_ = 0.84;
    /// Multiplier on ideal operand traffic for imperfect L2/smem reuse.
    static constexpr double trafficFactor_ = 1.10;
};

} // namespace vespera::hw

#endif // VESPERA_HW_TENSOR_CORE_H
