#include "hw/power.h"

#include <algorithm>

#include "common/logging.h"

namespace vespera::hw {

PowerModel::PowerModel(const DeviceSpec &spec)
    : spec_(spec), idle_(spec.idlePower)
{
    // Dynamic power coefficients calibrated against the paper's measured
    // averages: +12% absolute power for Gaudi-2 on RecSys (Section 3.5),
    // ~+1% on single-device LLM serving, and ~88% of A100 power on
    // multi-device LLM serving. TDP (600 W vs 400 W) is a cap that AI
    // serving does not reach on either device.
    switch (spec.kind) {
      case DeviceKind::Gaudi2:
        matrixMax_ = 230;
        // The 24-TPC VLIW array draws substantially more than A100's
        // SIMD partition per unit activity — this is what drives the
        // paper's +12% RecSys power despite near-parity on LLMs.
        vectorMax_ = 150;
        hbmMax_ = 62;
        break;
      case DeviceKind::A100:
        matrixMax_ = 235;
        vectorMax_ = 60;
        hbmMax_ = 88;
        break;
    }
}

Watts
PowerModel::averagePower(const ActivityProfile &a) const
{
    vassert(a.matrixActivity >= 0 && a.matrixActivity <= 1.0 &&
            a.vectorActivity >= 0 && a.vectorActivity <= 1.0 &&
            a.hbmActivity >= 0 && a.hbmActivity <= 1.0 &&
            a.matrixMacFraction >= 0 && a.matrixMacFraction <= 1.0,
            "activity fractions must be in [0,1]");
    Watts p = idle_ +
              matrixMax_ * a.matrixActivity * a.matrixMacFraction +
              vectorMax_ * a.vectorActivity +
              hbmMax_ * a.hbmActivity;
    return std::min(p, spec_.tdp);
}

} // namespace vespera::hw
