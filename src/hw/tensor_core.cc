#include "hw/tensor_core.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/attrib.h"
#include "obs/counters.h"

namespace vespera::hw {

TensorCoreModel::TensorCoreModel(const DeviceSpec &spec)
    : spec_(spec)
{
    vassert(spec.kind == DeviceKind::A100,
            "TensorCoreModel models A100 Tensor Cores only");
}

const std::vector<std::pair<int, int>> &
TensorCoreModel::candidateTiles()
{
    static const std::vector<std::pair<int, int>> tiles = {
        {256, 128}, {128, 256}, {128, 128}, {256, 64}, {64, 256},
        {128, 64}, {64, 128}, {64, 64},
    };
    return tiles;
}

GemmCost
TensorCoreModel::gemmWithTile(const GemmShape &shape, DataType dt,
                              int tile_m, int tile_n) const
{
    vassert(shape.m > 0 && shape.k > 0 && shape.n > 0 && shape.batch > 0,
            "degenerate GEMM shape");

    const double tiles_m = std::ceil(static_cast<double>(shape.m) / tile_m);
    const double tiles_n = std::ceil(static_cast<double>(shape.n) / tile_n);
    const double tiles = tiles_m * tiles_n * shape.batch;
    const double waves = std::ceil(tiles / spec_.numVectorCores);

    // Per-SM tensor-core MAC throughput (MACs/cycle), BF16.
    const double per_sm_macs = spec_.matrixPeakBf16 /
        (2.0 * spec_.matrixClock * spec_.numVectorCores);
    const double rate_scale =
        dt == DataType::FP32 ? 1.0 / spec_.fp32MatrixRatio : 1.0;
    const double tile_cycles =
        (static_cast<double>(shape.k) * tile_m * tile_n / per_sm_macs *
             rate_scale +
         tileOverheadCycles_) / smEfficiency_;

    const Seconds compute = waves * tile_cycles / spec_.matrixClock;

    const double traffic = trafficFactor_ *
        static_cast<double>(shape.idealTraffic(dt));
    const Seconds memory =
        traffic / (spec_.hbmBandwidth * gemmHbmEfficiency_);

    GemmCost cost;
    cost.computeTime = compute;
    cost.memoryTime = memory;
    cost.time = std::max(compute, memory) + spec_.launchOverhead;
    cost.achievedFlops = shape.flops() / cost.time;
    cost.utilization = cost.achievedFlops / spec_.matrixPeak(dt);
    cost.activeMacFraction = 1.0;
    cost.geometry = strfmt("%dx%d", tile_m, tile_n);
    return cost;
}

GemmCost
TensorCoreModel::gemm(const GemmShape &shape, DataType dt) const
{
    GemmCost best;
    bool first = true;
    for (const auto &[tm, tn] : candidateTiles()) {
        GemmCost c = gemmWithTile(shape, dt, tm, tn);
        if (first || c.time < best.time) {
            best = c;
            first = false;
        }
    }

    auto &registry = obs::CounterRegistry::instance();
    static obs::Counter &gemms = registry.counter("tc.gemms");
    static obs::Counter &flops = registry.counter("tc.flops");
    static obs::Counter &busy = registry.counter("tc.busy_seconds");
    gemms.add();
    flops.add(shape.flops());
    busy.add(best.time);

    // Attribution mirrors the MME split minus the reconfig category
    // (tile choice is per-kernel on the A100, not a persistent array
    // reconfiguration): overlapped compute is useful work, the stall
    // beyond it is memory_bw, and the launch overhead is exposed
    // latency (the residual absorbing fp residue).
    static const int attribScope =
        obs::AttributionLedger::instance().scope("tc");
    obs::AttribBreakdown b;
    b[obs::AttribCat::Compute] = best.computeTime;
    b[obs::AttribCat::MemoryBw] =
        std::max(0.0, best.memoryTime - best.computeTime);
    b.settle(obs::AttribCat::ExposedLat, best.time);
    obs::AttributionLedger::instance().charge(
        attribScope,
        strfmt("gemm %lldx%lldx%lld %s",
               static_cast<long long>(shape.m),
               static_cast<long long>(shape.k),
               static_cast<long long>(shape.n), best.geometry.c_str()),
        b);
    return best;
}

} // namespace vespera::hw
