#include "hw/mme.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/attrib.h"
#include "obs/capture.h"
#include "obs/counters.h"

namespace vespera::hw {

std::string
MmeGeometry::label() const
{
    if (count > 1)
        return strfmt("%dx(%dx%d)", count, height, width);
    return strfmt("%dx%d", height, width);
}

MmeModel::MmeModel(const DeviceSpec &spec)
    : spec_(spec)
{
    vassert(spec.kind == DeviceKind::Gaudi2,
            "MmeModel models the Gaudi MME family only");
    // Physical 256x256 MAC units implied by the peak and clock.
    mmeCount_ = std::max(
        1, static_cast<int>(std::lround(
               spec.matrixPeakBf16 / (spec.matrixClock * 2 * 65536))));
    geometries_ = buildGeometries(mmeCount_);
}

std::vector<MmeGeometry>
MmeModel::buildGeometries(int mme_count)
{
    vassert(mme_count >= 1, "need at least one MME");
    // Aspect ratios the array can reshape into (paper Figure 6(b)),
    // including power-gated subsets used for small GEMM shapes (paper
    // Figure 7(a): gray configurations activate only part of the
    // MAC array).
    static constexpr std::pair<int, int> aspects[] = {
        {256, 256}, {512, 256}, {256, 512}, {1024, 128}, {128, 1024},
        {512, 128}, {128, 512}, {256, 128}, {128, 256}, {128, 128},
        {64, 64},
    };
    const int max_macs = mme_count * 65536;
    std::vector<MmeGeometry> geoms;
    for (auto [h, w] : aspects) {
        for (int c = 1; c <= mme_count; c *= 2) {
            if (h * w * c <= max_macs)
                geoms.push_back({h, w, c});
        }
    }
    return geoms;
}

const std::vector<MmeGeometry> &
MmeModel::candidateGeometries()
{
    // Gaudi-2's set: two physical MME units.
    static const std::vector<MmeGeometry> geoms = buildGeometries(2);
    return geoms;
}

GemmCost
MmeModel::gemmWithGeometry(const GemmShape &shape, DataType dt,
                           const MmeGeometry &geom) const
{
    vassert(shape.m > 0 && shape.k > 0 && shape.n > 0 && shape.batch > 0,
            "degenerate GEMM shape");

    const double tiles_m = std::ceil(static_cast<double>(shape.m) /
                                     geom.height);
    const double tiles_n = std::ceil(static_cast<double>(shape.n) /
                                     geom.width);
    const double tiles = tiles_m * tiles_n * shape.batch;
    // Output-stationary: each tile streams K operand rows/columns; the
    // array pipeline is filled once (height+width) and consecutive tiles
    // overlap drain with fill, leaving only a small tile-switch bubble.
    const double fill = geom.height + geom.width;
    const double rounds = std::ceil(tiles / geom.count);
    const double cycles =
        fill + rounds * (static_cast<double>(shape.k) + tileOverheadCycles_);

    // FP32 GEMMs run at the device's reduced FP32 matrix rate.
    const double rate_scale =
        dt == DataType::FP32 ? 1.0 / spec_.fp32MatrixRatio : 1.0;
    const Seconds compute = cycles * rate_scale / spec_.matrixClock;

    const double traffic = trafficFactor_ *
        static_cast<double>(shape.idealTraffic(dt));
    const Seconds memory =
        traffic / (spec_.hbmBandwidth * gemmHbmEfficiency_);

    GemmCost cost;
    cost.computeTime = compute;
    cost.memoryTime = memory;
    cost.time = std::max(compute, memory) + spec_.launchOverhead;
    cost.achievedFlops = shape.flops() / cost.time;
    cost.utilization = cost.achievedFlops / spec_.matrixPeak(dt);
    cost.activeMacFraction = static_cast<double>(geom.totalMacs()) /
                             (mmeCount_ * 65536.0);
    cost.geometry = geom.label();
    return cost;
}

MmeGeometry
MmeModel::selectGeometry(const GemmShape &shape, DataType dt) const
{
    // First pass: the fastest configuration.
    Seconds best_time = 0;
    bool first = true;
    for (const auto &g : geometries_) {
        GemmCost c = gemmWithGeometry(shape, dt, g);
        if (first || c.time < best_time) {
            best_time = c.time;
            first = false;
        }
    }
    // Second pass: among configurations within 2% of the fastest,
    // prefer the fewest powered MACs (the paper speculates the MME
    // power-gates inactive portions of the array for small shapes).
    const MmeGeometry *best = nullptr;
    for (const auto &g : geometries_) {
        GemmCost c = gemmWithGeometry(shape, dt, g);
        if (c.time > best_time * 1.02)
            continue;
        if (!best || g.totalMacs() < best->totalMacs())
            best = &g;
    }
    vassert(best, "no geometry selected");
    return *best;
}

GemmCost
MmeModel::gemm(const GemmShape &shape, DataType dt) const
{
    GemmCost cost = gemmWithGeometry(shape, dt, selectGeometry(shape, dt));

    auto &registry = obs::CounterRegistry::instance();
    static obs::Counter &gemms = registry.counter("mme.gemms");
    static obs::Counter &flops = registry.counter("mme.flops");
    static obs::Counter &busy = registry.counter("mme.busy_seconds");
    static obs::Counter &reconfigs = registry.counter("mme.reconfigs");
    gemms.add();
    flops.add(shape.flops());
    busy.add(cost.time);

    // Attribution: overlapped compute is useful work; only the stall
    // the bandwidth term exposes beyond it is charged to memory_bw.
    // The launch overhead's category depends on the reconfig decision
    // below (geometry switch -> reconfig, else exposed_latency).
    static const int attribScope =
        obs::AttributionLedger::instance().scope("mme");
    obs::AttribBreakdown b;
    b[obs::AttribCat::Compute] = cost.computeTime;
    b[obs::AttribCat::MemoryBw] =
        std::max(0.0, cost.memoryTime - cost.computeTime);

    // The reconfig decision compares against the *previous* gemm()
    // call's geometry — an order-dependent read of shared state. Under
    // a capture (parallel task) it must not run on the worker thread:
    // defer it to the outermost replay, which is serial and
    // index-ordered, so the count matches serial execution exactly.
    // The attribution charge rides the same closure since the launch
    // overhead's category hinges on that decision (and the ledger's
    // per-op lane is itself order-dependent).
    auto apply_tail = [this, geom = cost.geometry, b,
                       total = cost.time,
                       op = strfmt("gemm %lldx%lldx%lld %s",
                                   static_cast<long long>(shape.m),
                                   static_cast<long long>(shape.k),
                                   static_cast<long long>(shape.n),
                                   cost.geometry.c_str())]() mutable {
        bool reconfigured = false;
        if (geom != lastGeometry_) {
            if (!lastGeometry_.empty()) {
                reconfigs.add();
                reconfigured = true;
            }
            lastGeometry_ = geom;
        }
        const obs::AttribCat launchCat =
            reconfigured ? obs::AttribCat::Reconfig
                         : obs::AttribCat::ExposedLat;
        b.settle(launchCat, total);
        obs::AttributionLedger::instance().charge(attribScope,
                                                  std::move(op), b);
    };
    if (obs::SideEffectLog *log = obs::ScopedCapture::current())
        log->appendDeferred(std::move(apply_tail));
    else
        apply_tail();
    return cost;
}

} // namespace vespera::hw
