/**
 * @file
 * Regenerates Figure 12: (a) Gaudi-2's speedup over A100 serving
 * Llama-3.1-8B on one device and Llama-3.1-70B over 2/4/8 devices
 * with tensor parallelism, across batch sizes and output lengths
 * (input fixed at 100); (b) prefill/decode latency breakdown for the
 * 8B model at batch 64.
 *
 * Paper anchors: 8B single-device average speedup 1.47x (max 1.70x);
 * 70B TP=2/4/8 averages 1.29/1.32/1.35x, growing with device count.
 */

#include <cstdio>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "models/llama.h"
#include "obs/timeline.h"
#include "runtime/sweep.h"
#include "serve/engine.h"
#include "serve/trace.h"

#include "bench_common.h"

using namespace vespera;

namespace {

double
speedupHeatmap(const models::LlamaConfig &cfg, int tp)
{
    models::LlamaModel model(cfg);
    printHeading(strfmt("Figure 12(a): %s speedup, TP=%d",
                        cfg.name.c_str(), tp));
    Table t({"Batch \\ OutLen", "25", "50", "100", "200", "400"});
    const std::vector<int> batches = {1, 4, 16, 64};
    const std::vector<int> outs = {25, 50, 100, 200, 400};
    runtime::SweepRunner sweepr(strfmt("fig12a.tp%d", tp));
    auto speedups = sweepr.mapIndex(
        batches.size() * outs.size(), [&](std::size_t i) {
            models::LlamaServingConfig s;
            s.batch = batches[i / outs.size()];
            s.inputLen = 100;
            s.outputLen = outs[i % outs.size()];
            s.tpDevices = tp;
            auto g = model.serve(DeviceKind::Gaudi2, s);
            auto a = model.serve(DeviceKind::A100, s);
            return a.totalTime / g.totalTime;
        });
    Accumulator acc;
    for (std::size_t b = 0; b < batches.size(); b++) {
        std::vector<std::string> row = {Table::integer(batches[b])};
        for (std::size_t o = 0; o < outs.size(); o++) {
            const double sp = speedups[b * outs.size() + o];
            acc.add(sp);
            row.push_back(Table::num(sp, 2));
        }
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("Average speedup: %.2fx, max %.2fx\n", acc.mean(),
                acc.max());
    return acc.mean();
}

void
latencyBreakdown()
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    printHeading("Figure 12(b): Llama-8B latency breakdown, batch 64");

    Table t1({"Output len (in=100)", "Prefill (ms)", "Decode (ms)",
              "Decode share"});
    const std::vector<int> outs = {25, 50, 100, 200, 400};
    runtime::SweepRunner sweep_out("fig12b.out_len");
    auto by_out = sweep_out.map(outs, [&](int out) {
        models::LlamaServingConfig s;
        s.batch = 64;
        s.inputLen = 100;
        s.outputLen = out;
        return model.serve(DeviceKind::Gaudi2, s);
    });
    for (std::size_t i = 0; i < outs.size(); i++) {
        const auto &r = by_out[i];
        t1.addRow({Table::integer(outs[i]),
                   Table::num(r.prefillTime * 1e3, 1),
                   Table::num(r.decodeTime * 1e3, 1),
                   Table::pct(r.decodeTime / r.totalTime)});
    }
    t1.print();

    Table t2({"Input len (out=100)", "Prefill (ms)", "Decode (ms)",
              "Prefill share"});
    const std::vector<int> ins = {100, 200, 400, 800, 1600};
    runtime::SweepRunner sweep_in("fig12b.in_len");
    auto by_in = sweep_in.map(ins, [&](int in) {
        models::LlamaServingConfig s;
        s.batch = 64;
        s.inputLen = in;
        s.outputLen = 100;
        return model.serve(DeviceKind::Gaudi2, s);
    });
    for (std::size_t i = 0; i < ins.size(); i++) {
        const auto &r = by_in[i];
        t2.addRow({Table::integer(ins[i]),
                   Table::num(r.prefillTime * 1e3, 1),
                   Table::num(r.decodeTime * 1e3, 1),
                   Table::pct(r.prefillTime / r.totalTime)});
    }
    t2.print();
}

/**
 * Virtual-time serving timeline (--timeline-interval only): one
 * continuous-batching engine run over a bursty Dynamic-Sonnet-like
 * trace, recorded as windowed gauges with a p99-TTFT SLO monitor. The
 * run is deterministic (fixed seed, simulated time only), so the
 * exported "timeline" section is diffable across commits with
 * `vespera-stat timeline` — CI gates it against
 * tools/bench_baseline/bench_fig12_llm_serving.timeline.json.
 */
void
servingTimeline()
{
    obs::Timeline &timeline = obs::Timeline::instance();
    if (!timeline.enabled())
        return;
    printHeading("Serving timeline (virtual-time gauges)");
    // The SLO monitor records the first window whose p99 TTFT exceeds
    // the bound; the bound sits inside this trace's dynamic range so
    // the violation path is exercised (and its first-violation
    // timestamp baselined).
    timeline.addSlo({"ttft_p99_seconds", 2.0});

    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    serve::EngineConfig ec;
    ec.maxDecodeBatch = 32;
    ec.kvCacheBytes = 16ull << 30;
    ec.timelineLabel = "fig12.serve";
    serve::Engine engine(model, ec);

    serve::TraceConfig tc;
    tc.numRequests = 96;
    tc.arrivalRate = 24; // bursty enough that queue depth moves
    Rng rng(2025);
    const auto m = engine.run(serve::makeDynamicTrace(tc, rng));
    std::printf("makespan %.2fs  p99 TTFT %.3fs  goodput %.0f tok/s  "
                "windows every %.3gs\n",
                m.makespan, m.p99Ttft, m.throughputTokensPerSec,
                timeline.interval());
    for (const auto &r : timeline.sloResults()) {
        std::printf("SLO %s <= %g: %s\n", r.gauge.c_str(), r.bound,
                    r.violated
                        ? strfmt("first violated at t=%.3fs (%.3f)",
                                 r.firstViolationT,
                                 r.firstViolationValue)
                              .c_str()
                        : "never violated");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig12_llm_serving");
    const double s8 =
        speedupHeatmap(models::LlamaConfig::llama31_8b(), 1);
    double s70[3];
    int i = 0;
    for (int tp : {2, 4, 8})
        s70[i++] = speedupHeatmap(models::LlamaConfig::llama31_70b(),
                                  tp);

    latencyBreakdown();
    servingTimeline();

    printHeading("Summary vs paper");
    std::printf("8B  single-device avg: %.2fx (paper 1.47x)\n", s8);
    std::printf("70B TP=2/4/8 avg: %.2f / %.2f / %.2fx "
                "(paper 1.29 / 1.32 / 1.35x)\n",
                s70[0], s70[1], s70[2]);
    return bench::finish(opts);
}
