/**
 * @file
 * Ablation: what if Gaudi-2's memory system supported finer access
 * granularity? Key Takeaway #3 attributes Gaudi's small-vector gather
 * losses to its 256 B minimum access granularity vs A100's 32 B
 * sectors; this bench re-runs the Figure 9 gather sweep with
 * hypothetical 128/64/32 B Gaudi granules.
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "mem/hbm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_ablation_granularity");
    printHeading("Ablation: Gaudi-2 gather utilization vs hypothetical "
                 "access granularity");

    const Bytes granules[] = {256, 128, 64, 32};
    Table t({"Vector (B)", "Gaudi 256B (real)", "Gaudi 128B",
             "Gaudi 64B", "Gaudi 32B", "A100 (32B sectors)"});

    // Keep independent spec copies alive for the HbmModel references.
    std::vector<hw::DeviceSpec> specs;
    specs.reserve(4);
    for (Bytes g : granules)
        specs.push_back(hw::withAccessGranularity(hw::gaudi2Spec(), g));

    auto util = [](const mem::HbmModel &m, Bytes vec) {
        mem::RandomAccessWorkload w;
        w.accessSize = vec;
        w.numAccesses = 1 << 20;
        w.concurrency = 384;
        return m.randomAccess(w).bandwidthUtilization;
    };

    mem::HbmModel a100(hw::a100Spec());
    const std::vector<Bytes> vecs = {16, 32, 64, 128, 256, 512};
    runtime::SweepRunner sweepr("ablation.granularity");
    auto rows = sweepr.map(vecs, [&](Bytes vec) {
        std::vector<std::string> row = {
            Table::integer(static_cast<long long>(vec))};
        for (const auto &spec : specs) {
            mem::HbmModel m(spec);
            row.push_back(Table::pct(util(m, vec)));
        }
        row.push_back(Table::pct(util(a100, vec)));
        return row;
    });
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print();

    std::printf(
        "\nFiner granules close most of the small-vector gap to A100 —\n"
        "supporting the paper's conclusion that the deficit is a\n"
        "hardware memory-path property, not a programming-model one.\n"
        "(The residual difference is DRAM activation overhead, which\n"
        "A100's deeper scheduling also amortizes better.)\n");
    return bench::finish(opts);
}
