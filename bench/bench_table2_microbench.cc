/**
 * @file
 * Regenerates Table 2: the microbenchmark inventory — what each
 * microbenchmark measures, the system under test, and how it is
 * implemented in this framework (mirroring the paper's
 * PyTorch-API / TPC-C / CUDA / HCCL / NCCL column), with a one-line
 * smoke result per row proving the path is live.
 */

#include <cstdio>

#include "coll/collective.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/gather_scatter.h"
#include "kern/gemm.h"
#include "kern/stream.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_table2_microbench");
    printHeading("Table 2: evaluated microbenchmarks");
    Table t({"Microbenchmark", "System", "Implementation",
             "Smoke result"});

    // Compute / GEMM — engine models standing in for the PyTorch API.
    {
        hw::GemmShape shape{4096, 4096, 4096};
        auto g = kern::runGemm(DeviceKind::Gaudi2, shape,
                               DataType::BF16);
        auto a = kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
        t.addRow({"Compute: GEMM", "Gaudi-2", "MME model (PyTorch API)",
                  strfmt("%.0f TFLOPS", g.achievedFlops / TFLOPS)});
        t.addRow({"Compute: GEMM", "A100",
                  "TensorCore model (PyTorch API)",
                  strfmt("%.0f TFLOPS", a.achievedFlops / TFLOPS)});
    }

    // Compute / non-GEMM — TPC-C kernels vs CUDA cost model.
    {
        kern::StreamConfig c;
        c.op = kern::StreamOp::Triad;
        c.numElements = 4 << 20;
        auto g = kern::runStreamGaudi(c);
        auto a = kern::runStreamA100(c);
        t.addRow({"Compute: non-GEMM (STREAM)", "Gaudi-2",
                  "TPC-C kernel (traced)",
                  strfmt("%.0f GFLOPS", g.gflops)});
        t.addRow({"Compute: non-GEMM (STREAM)", "A100", "CUDA model",
                  strfmt("%.0f GFLOPS", a.gflops)});
    }

    // Memory / gather-scatter.
    {
        kern::GatherScatterConfig c;
        c.numVectors = 1 << 16;
        c.vectorBytes = 256;
        Rng rng(1);
        auto g = kern::runGatherScatterGaudi(c, rng);
        auto a = kern::runGatherScatterA100(c);
        t.addRow({"Memory: vector gather-scatter", "Gaudi-2",
                  "TPC-C kernel (traced)",
                  strfmt("%.0f%% BW util", g.hbmUtilization * 100)});
        t.addRow({"Memory: vector gather-scatter", "A100", "CUDA model",
                  strfmt("%.0f%% BW util", a.hbmUtilization * 100)});
    }

    // Communication / collectives.
    {
        auto hccl = coll::CollectiveModel::hcclOnGaudi2();
        auto nccl = coll::CollectiveModel::ncclOnDgxA100();
        auto g = hccl.run(coll::CollectiveOp::AllReduce, 32 << 20, 8);
        auto a = nccl.run(coll::CollectiveOp::AllReduce, 32 << 20, 8);
        t.addRow({"Comm: collectives", "Gaudi-2", "HCCL model (P2P)",
                  strfmt("%.0f GB/s bus", g.busBandwidth / GB)});
        t.addRow({"Comm: collectives", "A100", "NCCL model (NVSwitch)",
                  strfmt("%.0f GB/s bus", a.busBandwidth / GB)});
    }

    t.print();
    return bench::finish(opts);
}
