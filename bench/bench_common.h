/**
 * @file
 * Shared telemetry harness for every `bench_*` binary.
 *
 * Gives all benches four uniform flags with zero per-bench logic:
 *
 *   --trace=<path>     write a Perfetto/Chrome trace (spans + counter
 *                      tracks) of everything the run recorded
 *   --metrics=<path>   write a `vespera-metrics/v2` JSON document
 *                      (device counters, rate meters, histograms,
 *                      attribution, optional google-benchmark timings)
 *   --telemetry-dir=<dir>  convenience: both of the above, at
 *                      <dir>/<bench>.trace.json and
 *                      <dir>/<bench>.metrics.json
 *   --threads=<n>      size the runtime::Pool the bench's sweeps fan
 *                      out on (also `--threads <n>`; 0 = all cores).
 *                      Output is bit-identical at any value — the
 *                      runtime's determinism contract (docs/runtime.md)
 *   --selfprof         attribute the simulator's *own* wall time
 *                      (obs/selfprof.h): prints a host self-profile
 *                      table and adds the v2.1 "host" section to the
 *                      metrics document. Precedence: --selfprof only
 *                      changes what a metrics export *contains* — it
 *                      writes no file by itself, so pair it with
 *                      --metrics or --telemetry-dir to persist the
 *                      section. Wall times vary run to run, so the
 *                      determinism contract covers documents produced
 *                      *without* this flag.
 *   --timeline-interval=<sec>  enable virtual-time timelines
 *                      (obs/timeline.h): serving producers record
 *                      windowed gauges every <sec> *simulated* seconds
 *                      and the metrics document gains the v2.2
 *                      "timeline" section. Deterministic (simulated
 *                      time only), so --timeline-interval documents
 *                      stay byte-identical at any --threads.
 *   --quiet            suppress normal stdout (telemetry still written)
 *
 * Usage pattern (see any bench_*.cc):
 *
 *   int main(int argc, char **argv) {
 *       auto opts = bench::parseArgs(argc, argv, "bench_fig8_stream");
 *       ... existing bench body ...
 *       return bench::finish(opts);
 *   }
 *
 * parseArgs strips the flags it owns from argv, so harnesses with
 * their own flag parsing (google-benchmark) can consume the rest.
 */

#ifndef VESPERA_BENCH_COMMON_H
#define VESPERA_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/io.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "runtime/pool.h"

namespace vespera::bench {

/** Parsed harness options. */
struct Options
{
    std::string name;        ///< Bench binary name (metrics `tool`).
    std::string tracePath;   ///< Empty = no trace export.
    std::string metricsPath; ///< Empty = no metrics export.
    std::string telemetryDir; ///< Empty = no derived paths.
    bool quiet = false;
    bool selfprof = false;   ///< Host self-profiling was requested.
    int threads = 1;         ///< Runtime pool size this run used.
    /// Virtual-time sampling interval in simulated seconds; 0 = off.
    double timelineInterval = 0;
    /** Extra google-benchmark results merged into the metrics doc. */
    obs::MetricsMeta meta;
};

/**
 * Parse and strip the harness flags from argv. Enables the process
 * profiler when a trace was requested; redirects stdout to /dev/null
 * under --quiet so benches need no conditional printing.
 */
inline Options
parseArgs(int &argc, char **argv, const char *bench_name)
{
    Options opts;
    opts.name = bench_name;
    opts.meta.tool = bench_name;

    int kept = 1;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            opts.tracePath = arg + 8;
        } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
            opts.metricsPath = arg + 10;
        } else if (std::strncmp(arg, "--telemetry-dir=", 16) == 0) {
            // Derived paths; explicit --trace/--metrics win regardless
            // of flag order (see below).
            const std::string dir(arg + 16);
            opts.telemetryDir = dir.empty() ? "." : dir;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            opts.threads = std::atoi(arg + 10);
        } else if (std::strcmp(arg, "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (std::strcmp(arg, "--selfprof") == 0) {
            opts.selfprof = true;
        } else if (std::strncmp(arg, "--timeline-interval=", 20) == 0) {
            opts.timelineInterval = std::atof(arg + 20);
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf(
                "%s — vespera benchmark\n"
                "  --trace=<path>    write Perfetto/Chrome trace JSON\n"
                "  --metrics=<path>  write vespera-metrics/v2 JSON\n"
                "  --telemetry-dir=<dir>  write both, as "
                "<dir>/%s.{trace,metrics}.json\n"
                "  --threads=<n>     parallel sweep workers (0 = all "
                "cores);\n"
                "                    output is identical at any value\n"
                "  --selfprof        attribute the simulator's own wall "
                "time\n"
                "                    (adds the \"host\" section to a "
                "--metrics/\n"
                "                    --telemetry-dir export; writes no "
                "file alone)\n"
                "  --timeline-interval=<sec>  record virtual-time "
                "timelines every\n"
                "                    <sec> simulated seconds (adds the "
                "\"timeline\"\n"
                "                    section to a metrics export; "
                "deterministic)\n"
                "  --quiet           suppress normal stdout\n",
                bench_name, bench_name);
            std::exit(0);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
    argv[argc] = nullptr;

    if (opts.threads <= 0 && opts.threads != 1) {
        const unsigned hw = std::thread::hardware_concurrency();
        opts.threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    if (opts.threads < 1)
        opts.threads = 1;
    runtime::Pool::setGlobalThreads(opts.threads);

    if (!opts.telemetryDir.empty()) {
        if (opts.tracePath.empty())
            opts.tracePath =
                opts.telemetryDir + "/" + opts.name + ".trace.json";
        if (opts.metricsPath.empty())
            opts.metricsPath =
                opts.telemetryDir + "/" + opts.name + ".metrics.json";
    }

    if (!opts.tracePath.empty())
        obs::Profiler::instance().setEnabled(true);
    if (opts.selfprof)
        obs::SelfProf::instance().setEnabled(true);
    if (opts.timelineInterval > 0) {
        obs::Timeline::instance().setInterval(opts.timelineInterval);
        obs::Timeline::instance().setEnabled(true);
    }
    if (opts.quiet) {
        // Telemetry files are the only output anyone asked for.
        if (!std::freopen("/dev/null", "w", stdout))
            std::fprintf(stderr, "--quiet: cannot silence stdout\n");
    }
    return opts;
}

/**
 * End-of-run hook: write the requested telemetry, print the counter
 * summary. Returns the bench's exit code (nonzero on export failure).
 */
inline int
finish(const Options &opts)
{
    int rc = 0;
    auto &registry = obs::CounterRegistry::instance();

    obs::MetricsMeta meta = opts.meta;
    if (opts.selfprof) {
        {
            // The summary print is telemetry work on the host clock;
            // charging it before settle() closes the window keeps the
            // category from reading zero on every bench.
            obs::SelfTimer t(obs::SelfCat::TelemetryExport);
            if (!opts.quiet)
                obs::printCounterSummary(registry);
        }
        meta.host = obs::SelfProf::instance().settle();
        meta.hostPresent = true;
        if (!opts.quiet)
            obs::printHostSelfProfile(meta.host);
        // Counter tracks land next to the Host span lanes in the
        // Perfetto trace, so publish before the trace is serialized.
        obs::publishHostSelfProfile(meta.host,
                                    obs::Profiler::instance());
    } else if (!opts.quiet) {
        obs::printCounterSummary(registry);
    }

    if (!opts.metricsPath.empty()) {
        const std::string doc = obs::metricsJson(registry, meta);
        if (writeFile(opts.metricsPath, doc)) {
            std::fprintf(stderr, "wrote metrics to %s\n",
                         opts.metricsPath.c_str());
        } else {
            std::fprintf(stderr, "cannot write metrics to %s\n",
                         opts.metricsPath.c_str());
            rc = 1;
        }
    }

    if (!opts.tracePath.empty()) {
        obs::Profiler &profiler = obs::Profiler::instance();
        const std::string trace = obs::chromeTraceJson(profiler);
        if (writeFile(opts.tracePath, trace)) {
            std::fprintf(stderr,
                         "wrote trace to %s (open at ui.perfetto.dev)\n",
                         opts.tracePath.c_str());
        } else {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         opts.tracePath.c_str());
            rc = 1;
        }
    }
    return rc;
}

} // namespace vespera::bench

#endif // VESPERA_BENCH_COMMON_H
