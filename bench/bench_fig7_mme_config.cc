/**
 * @file
 * Regenerates Figure 7: (a) the MME systolic-array geometry the graph
 * compiler selects as a function of the GEMM's (M, N) with K=16384,
 * (b) the corresponding compute utilization, and (c) the ablation of
 * configurable vs fixed 2x(256x256) output-stationary geometry while
 * sweeping N at M=K=16384.
 *
 * Paper anchor: configurability buys up to ~15% utilization over the
 * fixed array.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "hw/mme.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig7_mme_config");
    hw::MmeModel mme;
    const std::vector<std::int64_t> dims = {128, 256, 512, 1024, 4096,
                                            16384};

    printHeading("Figure 7(a,b): selected MME geometry and utilization"
                 " (K=16384)");
    Table geo({"M", "N", "Geometry", "Active MACs", "Utilization"});
    for (auto m : dims) {
        for (auto n : dims) {
            hw::GemmShape shape{m, 16384, n};
            auto g = mme.selectGeometry(shape, DataType::BF16);
            auto cost = mme.gemm(shape, DataType::BF16);
            geo.addRow({Table::integer(m), Table::integer(n), g.label(),
                        Table::pct(cost.activeMacFraction, 0),
                        Table::pct(cost.utilization)});
        }
    }
    geo.print();

    printHeading("Figure 7(c): configurable vs fixed geometry "
                 "(M=K=16384, N sweep)");
    Table ab({"N", "Fixed 2x(256x256)", "Configurable", "Improvement"});
    double best_gain = 0;
    for (std::int64_t n : {16, 32, 64, 128, 256, 512, 1024}) {
        hw::GemmShape shape{16384, 16384, n};
        auto fixed = mme.gemmWithGeometry(shape, DataType::BF16,
                                          hw::MmeModel::fixedGeometry());
        auto conf = mme.gemm(shape, DataType::BF16);
        const double gain = conf.utilization - fixed.utilization;
        best_gain = std::max(best_gain, gain);
        ab.addRow({Table::integer(n), Table::pct(fixed.utilization),
                   Table::pct(conf.utilization),
                   strfmt("%+.1f pp", gain * 100)});
    }
    ab.print();
    std::printf("\nMax improvement from configurability: %+.1f pp "
                "(paper: up to ~15%%)\n",
                best_gain * 100);
    return bench::finish(opts);
}
