/**
 * @file
 * Regenerates Figure 7: (a) the MME systolic-array geometry the graph
 * compiler selects as a function of the GEMM's (M, N) with K=16384,
 * (b) the corresponding compute utilization, and (c) the ablation of
 * configurable vs fixed 2x(256x256) output-stationary geometry while
 * sweeping N at M=K=16384.
 *
 * Paper anchor: configurability buys up to ~15% utilization over the
 * fixed array.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "hw/mme.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig7_mme_config");
    hw::MmeModel mme;
    const std::vector<std::int64_t> dims = {128, 256, 512, 1024, 4096,
                                            16384};

    printHeading("Figure 7(a,b): selected MME geometry and utilization"
                 " (K=16384)");
    Table geo({"M", "N", "Geometry", "Active MACs", "Utilization"});
    runtime::SweepRunner geo_sweep("fig7ab.geometry");
    auto geo_rows = geo_sweep.mapIndex(
        dims.size() * dims.size(), [&](std::size_t i) {
            const auto m = dims[i / dims.size()];
            const auto n = dims[i % dims.size()];
            hw::GemmShape shape{m, 16384, n};
            auto g = mme.selectGeometry(shape, DataType::BF16);
            auto cost = mme.gemm(shape, DataType::BF16);
            return std::vector<std::string>{
                Table::integer(m), Table::integer(n), g.label(),
                Table::pct(cost.activeMacFraction, 0),
                Table::pct(cost.utilization)};
        });
    for (auto &row : geo_rows)
        geo.addRow(std::move(row));
    geo.print();

    printHeading("Figure 7(c): configurable vs fixed geometry "
                 "(M=K=16384, N sweep)");
    Table ab({"N", "Fixed 2x(256x256)", "Configurable", "Improvement"});
    double best_gain = 0;
    const std::vector<std::int64_t> ns = {16,  32,  64,  128,
                                          256, 512, 1024};
    struct UtilPair
    {
        double fixed = 0;
        double conf = 0;
    };
    runtime::SweepRunner ab_sweep("fig7c.geometry_ablation");
    auto utils = ab_sweep.map(ns, [&](std::int64_t n) {
        hw::GemmShape shape{16384, 16384, n};
        auto fixed = mme.gemmWithGeometry(shape, DataType::BF16,
                                          hw::MmeModel::fixedGeometry());
        auto conf = mme.gemm(shape, DataType::BF16);
        return UtilPair{fixed.utilization, conf.utilization};
    });
    for (std::size_t i = 0; i < ns.size(); i++) {
        const double gain = utils[i].conf - utils[i].fixed;
        best_gain = std::max(best_gain, gain);
        ab.addRow({Table::integer(ns[i]), Table::pct(utils[i].fixed),
                   Table::pct(utils[i].conf),
                   strfmt("%+.1f pp", gain * 100)});
    }
    ab.print();
    std::printf("\nMax improvement from configurability: %+.1f pp "
                "(paper: up to ~15%%)\n",
                best_gain * 100);
    return bench::finish(opts);
}
