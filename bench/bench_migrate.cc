/**
 * @file
 * The migration scorecard as a bench (the paper's Section 4
 * programmability study, quantified): runs the CUDA->TPC corpus
 * through port::lowerAndRun, prints per-kernel parity, achieved
 * fraction of hand-written TPC-C performance, the A100 cost-model
 * comparison, and the migration-aware finding counts — the table
 * behind `vespera-lint migrate`.
 *
 * Paper anchors: naively ported kernels land well under hand-written
 * performance (warp-width accesses at half the 256 B granule, serial
 * strip execution exposing the 4-cycle dependency latency); following
 * the analyzer's fix hints (warpsPerStrip=2, stripUnroll>=4) recovers
 * hand parity on the `_tuned` re-lowerings.
 */

#include <cstdio>

#include "analysis/migrate/migrate_report.h"
#include "analysis/migrate/scorecard.h"
#include "common/table.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_migrate");

    printHeading("CUDA->TPC migration scorecard (21-kernel corpus)");
    const std::vector<analysis::MigrateEntry> entries =
        analysis::runMigrationCorpus({});

    Table t({"Kernel", "Parity", "Ported (us)", "Hand (us)",
             "Achieved", "vs A100", "Findings"});
    int parity_failures = 0;
    int below_hand = 0;
    for (const analysis::MigrateEntry &e : entries) {
        int migration = 0;
        for (const analysis::Diagnostic &d :
             e.analysis.report.diagnostics)
            migration += analysis::isMigrationRule(d.rule) ? 1 : 0;
        if (!e.parity)
            parity_failures++;
        if (e.achievedFraction < 0.9)
            below_hand++;
        t.addRow({e.kernel, e.parity ? "ok" : "FAIL",
                  Table::num(1e6 * e.portedTime, 2),
                  Table::num(1e6 * e.handTime, 2),
                  Table::pct(e.achievedFraction),
                  Table::num(e.slowdownVsA100, 2),
                  Table::integer(migration)});
    }
    t.print();
    std::printf("\n%zu kernels: %d parity failures, %d below 90%% of "
                "hand performance (each carries migration findings "
                "explaining the gap)\n",
                entries.size(), parity_failures, below_hand);

    return bench::finish(opts);
}
