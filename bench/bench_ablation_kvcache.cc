/**
 * @file
 * Ablation: PagedAttention's memory-management benefit (the vLLM
 * motivation the paper summarizes in Section 4.2) — paged block
 * allocation vs reserve-max-length contiguous allocation, under a
 * constrained KV pool.
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "serve/engine.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_ablation_kvcache");
    models::LlamaModel model(models::LlamaConfig::llama31_8b());

    serve::TraceConfig tc;
    tc.numRequests = 96;
    tc.maxInputLen = 1024;
    tc.maxOutputLen = 256;

    printHeading("Ablation: paged vs contiguous KV cache "
                 "(Llama-8B, Gaudi-2, 4 GiB KV pool)");
    Table t({"Policy", "Max batch", "Tok/s", "Avg decode batch",
             "Mean TTFT (s)", "Preemptions"});
    for (auto policy : {serve::KvPolicy::Contiguous,
                        serve::KvPolicy::Paged}) {
        for (int max_batch : {16, 64}) {
            serve::EngineConfig cfg;
            cfg.device = DeviceKind::Gaudi2;
            cfg.maxDecodeBatch = max_batch;
            cfg.kvCacheBytes = 4ull << 30;
            cfg.maxModelLen = 4096;
            cfg.kvPolicy = policy;
            serve::Engine engine(model, cfg);
            Rng rng(31);
            auto m = engine.run(serve::makeDynamicTrace(tc, rng));
            t.addRow({policy == serve::KvPolicy::Paged ? "paged"
                                                       : "contiguous",
                      Table::integer(max_batch),
                      Table::num(m.throughputTokensPerSec, 0),
                      Table::num(m.avgDecodeBatch, 1),
                      Table::num(m.meanTtft, 2),
                      Table::integer(m.preemptions)});
        }
    }
    t.print();
    std::printf("\nContiguous reservation fragments the pool into "
                "max-length slabs,\ncapping the decode batch; paging "
                "recovers the batch size and throughput.\n");
    return bench::finish(opts);
}
