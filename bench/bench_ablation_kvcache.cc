/**
 * @file
 * Ablation: PagedAttention's memory-management benefit (the vLLM
 * motivation the paper summarizes in Section 4.2) — paged block
 * allocation vs reserve-max-length contiguous allocation, under a
 * constrained KV pool.
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "runtime/sweep.h"
#include "serve/engine.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_ablation_kvcache");
    models::LlamaModel model(models::LlamaConfig::llama31_8b());

    serve::TraceConfig tc;
    tc.numRequests = 96;
    tc.maxInputLen = 1024;
    tc.maxOutputLen = 256;

    printHeading("Ablation: paged vs contiguous KV cache "
                 "(Llama-8B, Gaudi-2, 4 GiB KV pool)");
    Table t({"Policy", "Max batch", "Tok/s", "Avg decode batch",
             "Mean TTFT (s)", "Preemptions"});
    const std::vector<serve::KvPolicy> policies = {
        serve::KvPolicy::Contiguous, serve::KvPolicy::Paged};
    const std::vector<int> max_batches = {16, 64};
    runtime::SweepRunner sweepr("ablation.kvcache");
    auto metrics = sweepr.mapIndex(
        policies.size() * max_batches.size(), [&](std::size_t i) {
            serve::EngineConfig cfg;
            cfg.device = DeviceKind::Gaudi2;
            cfg.maxDecodeBatch = max_batches[i % max_batches.size()];
            cfg.kvCacheBytes = 4ull << 30;
            cfg.maxModelLen = 4096;
            cfg.kvPolicy = policies[i / max_batches.size()];
            serve::Engine engine(model, cfg);
            Rng rng(31);
            return engine.run(serve::makeDynamicTrace(tc, rng));
        });
    for (std::size_t p = 0; p < policies.size(); p++) {
        for (std::size_t b = 0; b < max_batches.size(); b++) {
            const auto &m = metrics[p * max_batches.size() + b];
            t.addRow({policies[p] == serve::KvPolicy::Paged
                          ? "paged"
                          : "contiguous",
                      Table::integer(max_batches[b]),
                      Table::num(m.throughputTokensPerSec, 0),
                      Table::num(m.avgDecodeBatch, 1),
                      Table::num(m.meanTtft, 2),
                      Table::integer(m.preemptions)});
        }
    }
    t.print();
    std::printf("\nContiguous reservation fragments the pool into "
                "max-length slabs,\ncapping the decode batch; paging "
                "recovers the batch size and throughput.\n");
    return bench::finish(opts);
}
