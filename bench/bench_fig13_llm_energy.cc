/**
 * @file
 * Regenerates Figure 13: Gaudi-2's energy-efficiency improvement over
 * A100 for Llama-3.1 serving — 8B on one device, 70B over 2/4/8
 * devices — across batch sizes and output lengths.
 *
 * Paper anchors: +48% single-device, +48/51/56% for TP=2/4/8; Gaudi-2
 * draws ~88% of A100's power on multi-device serving despite a 50%
 * higher TDP.
 */

#include <cstdio>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "models/llama.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

namespace {

std::pair<double, double>
energyHeatmap(const models::LlamaConfig &cfg, int tp)
{
    models::LlamaModel model(cfg);
    printHeading(strfmt("Figure 13: %s energy-efficiency ratio, TP=%d",
                        cfg.name.c_str(), tp));
    Table t({"Batch \\ OutLen", "25", "100", "400"});
    Accumulator eff, power;
    const std::vector<int> batches = {1, 4, 16, 64};
    const std::vector<int> outs = {25, 100, 400};
    struct PointResult
    {
        double effRatio = 0;
        double powerRatio = 0;
    };
    runtime::SweepRunner sweepr(strfmt("fig13.tp%d", tp));
    auto points = sweepr.mapIndex(
        batches.size() * outs.size(), [&](std::size_t i) {
            models::LlamaServingConfig s;
            s.batch = batches[i / outs.size()];
            s.inputLen = 100;
            s.outputLen = outs[i % outs.size()];
            s.tpDevices = tp;
            auto g = model.serve(DeviceKind::Gaudi2, s);
            auto a = model.serve(DeviceKind::A100, s);
            return PointResult{g.tokensPerJoule / a.tokensPerJoule,
                               g.avgPowerPerDevice /
                                   a.avgPowerPerDevice};
        });
    for (std::size_t b = 0; b < batches.size(); b++) {
        std::vector<std::string> row = {Table::integer(batches[b])};
        for (std::size_t o = 0; o < outs.size(); o++) {
            const PointResult &pr = points[b * outs.size() + o];
            eff.add(pr.effRatio);
            power.add(pr.powerRatio);
            row.push_back(Table::num(pr.effRatio, 2));
        }
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("Average energy-efficiency ratio %.2fx, average power "
                "ratio %.2fx\n",
                eff.mean(), power.mean());
    return {eff.mean(), power.mean()};
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig13_llm_energy");
    auto [e8, p8] = energyHeatmap(models::LlamaConfig::llama31_8b(), 1);
    double e70[3], p70[3];
    int i = 0;
    for (int tp : {2, 4, 8}) {
        auto [e, p] =
            energyHeatmap(models::LlamaConfig::llama31_70b(), tp);
        e70[i] = e;
        p70[i] = p;
        i++;
    }

    printHeading("Summary vs paper");
    std::printf("Energy-efficiency: 8B %.2fx (paper 1.48x); "
                "70B TP=2/4/8 %.2f / %.2f / %.2fx "
                "(paper 1.48 / 1.51 / 1.56x)\n",
                e8, e70[0], e70[1], e70[2]);
    std::printf("Power ratio: 8B %.2fx (paper ~1.01x); multi-device "
                "%.2f / %.2f / %.2fx (paper ~0.88x)\n",
                p8, p70[0], p70[1], p70[2]);
    return bench::finish(opts);
}
