/**
 * @file
 * Google-benchmark self-benchmarks of the simulator itself.
 *
 * Two tiers guard the interactive performance of the tool:
 *
 *  - microbenchmarks of the hot paths (GEMM costing, TPC pipeline
 *    evaluation, collective costing, one decode-step graph), and
 *  - end-to-end self-benchmarks that run whole user-visible workflows
 *    (a serving-engine decode run, a Figure-12 sweep point, the trace
 *    and static analyzers) so regressions in glue code — caching,
 *    scheduling, graph construction — are caught, not just kernel math.
 *
 * After the timing loops the harness resets all counters and runs one
 * *fixed-work* scenario, so the exported metrics document carries
 * machine-independent work counters next to the machine-dependent
 * `benchmarks` timings. CI gates both against tools/bench_baseline/
 * with per-prefix thresholds (tight on counters, loose on wall time);
 * see docs/observability.md §"Profiling the simulator itself".
 */

#include <benchmark/benchmark.h>

#include "analysis/analyzer.h"
#include "analysis/kernel_registry.h"
#include "analysis/static/static_analyzer.h"
#include "coll/collective.h"
#include "graph/replay_cache.h"
#include "kern/gemm.h"
#include "kern/stream.h"
#include "models/llama.h"
#include "serve/engine.h"
#include "serve/trace.h"
#include "tpc/dispatcher.h"

#include "bench_common.h"

using namespace vespera;

namespace {

void
BM_MmeGemmCost(benchmark::State &state)
{
    const hw::GemmShape shape{state.range(0), state.range(0),
                              state.range(0)};
    for (auto _ : state) {
        auto c = kern::runGemm(DeviceKind::Gaudi2, shape,
                               DataType::BF16);
        benchmark::DoNotOptimize(c.time);
    }
}
BENCHMARK(BM_MmeGemmCost)->Arg(1024)->Arg(8192);

void
BM_TensorCoreGemmCost(benchmark::State &state)
{
    const hw::GemmShape shape{state.range(0), state.range(0),
                              state.range(0)};
    for (auto _ : state) {
        auto c = kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
        benchmark::DoNotOptimize(c.time);
    }
}
BENCHMARK(BM_TensorCoreGemmCost)->Arg(1024)->Arg(8192);

void
BM_TpcStreamTrace(benchmark::State &state)
{
    kern::StreamConfig c;
    c.op = kern::StreamOp::Triad;
    c.numElements = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        auto r = kern::runStreamGaudi(c);
        benchmark::DoNotOptimize(r.gflops);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TpcStreamTrace)->Arg(1 << 16)->Arg(1 << 20);

void
BM_CollectiveCost(benchmark::State &state)
{
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    for (auto _ : state) {
        auto r = hccl.run(coll::CollectiveOp::AllReduce, 16 << 20, 8);
        benchmark::DoNotOptimize(r.time);
    }
}
BENCHMARK(BM_CollectiveCost);

void
BM_LlamaDecodeStepCost(benchmark::State &state)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    models::LlamaServingConfig cfg;
    for (auto _ : state) {
        Seconds t = model.stepTime(DeviceKind::Gaudi2, 32, 1, 1024,
                                   false, cfg);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_LlamaDecodeStepCost);

/// @name End-to-end self-benchmarks.
/// Whole user workflows, timed: step caching, the scheduler loop, and
/// analyzer passes dominate these, none of which the micro loops touch.
/// @{

/** A full continuous-batching decode run (cold caches every lap). */
void
BM_EngineDecodeRun(benchmark::State &state)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    for (auto _ : state) {
        serve::EngineConfig ec;
        ec.maxDecodeBatch = 8;
        serve::Engine engine(model, ec);
        auto m = engine.run(serve::makeFixedTrace(8, 128, 32));
        benchmark::DoNotOptimize(m.makespan);
    }
}
BENCHMARK(BM_EngineDecodeRun);

/**
 * The same decode run on the legacy per-iteration stepper
 * (serve::EngineCore::Legacy). BM_EngineDecodeRun above uses the
 * default event-driven core, so this pair keeps the cores' relative
 * cost on the selfperf record (the event core must never be slower)
 * next to the differential suite that proves them byte-identical
 * (tests/serve/test_engine_equiv.cc).
 */
void
BM_EngineDecodeRunLegacy(benchmark::State &state)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    for (auto _ : state) {
        serve::EngineConfig ec;
        ec.maxDecodeBatch = 8;
        ec.core = serve::EngineCore::Legacy;
        serve::Engine engine(model, ec);
        auto m = engine.run(serve::makeFixedTrace(8, 128, 32));
        benchmark::DoNotOptimize(m.makespan);
    }
}
BENCHMARK(BM_EngineDecodeRunLegacy);

/** One Figure-12 sweep point: monolithic prefill + integrated decode. */
void
BM_Fig12SweepPoint(benchmark::State &state)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    models::LlamaServingConfig cfg; // batch 32, 100 in / 100 out
    for (auto _ : state) {
        auto r = model.serve(DeviceKind::Gaudi2, cfg);
        benchmark::DoNotOptimize(r.tokensPerSec);
    }
}
BENCHMARK(BM_Fig12SweepPoint);

/**
 * The same sweep point with both replay caches bypassed: every decode
 * step rebuilds, recompiles and re-costs its graph — the pre-cache
 * cost of the workflow. CI's selfperf job gates the *same-run* ratio
 * of this benchmark to BM_Fig12SweepPoint at >= 3x (both halves run
 * in one process on one runner, so the ratio cancels machine speed).
 */
void
BM_Fig12SweepPointUncached(benchmark::State &state)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    models::LlamaServingConfig cfg;
    graph::ReplayCacheDisable off_nodes(graph::nodeReplayCache());
    graph::ReplayCacheDisable off_steps(graph::stepReplayCache());
    for (auto _ : state) {
        auto r = model.serve(DeviceKind::Gaudi2, cfg);
        benchmark::DoNotOptimize(r.tokensPerSec);
    }
}
BENCHMARK(BM_Fig12SweepPointUncached);

/** Trace-analyzer pass over a captured kernel trace. */
void
BM_TraceAnalyzer(benchmark::State &state)
{
    analysis::registerBuiltinKernels();
    auto traced =
        analysis::KernelRegistry::instance().traceAll("softmax");
    analysis::AnalyzerOptions opts;
    opts.exportCounters = false; // timing loop must not touch counters
    for (auto _ : state) {
        for (const auto &t : traced) {
            auto rep = analysis::analyzeProgram(t.program, opts);
            benchmark::DoNotOptimize(rep.diagnostics.size());
        }
    }
}
BENCHMARK(BM_TraceAnalyzer);

/** Pre-execution static-analyzer pass over the same trace corpus. */
void
BM_StaticAnalyzer(benchmark::State &state)
{
    analysis::registerBuiltinKernels();
    auto traced =
        analysis::KernelRegistry::instance().traceAll("softmax");
    for (auto _ : state) {
        for (const auto &t : traced) {
            auto rep = analysis::analyzeProgramStatic(t.program);
            benchmark::DoNotOptimize(&rep);
        }
    }
}
BENCHMARK(BM_StaticAnalyzer);

/// @}

/**
 * The fixed-work scenario behind the metrics document: the same
 * workflows as the end-to-end benchmarks, run exactly once on freshly
 * reset counters. Its counter values depend only on the simulator's
 * code, never on the machine or on google-benchmark's adaptive
 * iteration counts — the tight-threshold half of the selfperf gate.
 */
void
runFixedScenario()
{
    // The timing loops above left both replay caches warm after an
    // adaptive, machine-dependent iteration count. Start from cold
    // caches so the scenario's replay.* hit/miss/insert counts are a
    // function of the code alone. (The counters themselves were just
    // reset; clear() drops only entries.)
    graph::nodeReplayCache().clear();
    graph::stepReplayCache().clear();

    models::LlamaModel model(models::LlamaConfig::llama31_8b());

    serve::EngineConfig ec;
    ec.maxDecodeBatch = 8;
    serve::Engine engine(model, ec);
    engine.run(serve::makeFixedTrace(8, 128, 32));

    models::LlamaServingConfig cfg;
    model.serve(DeviceKind::Gaudi2, cfg);

    analysis::registerBuiltinKernels();
    for (const auto &t :
         analysis::KernelRegistry::instance().traceAll("softmax")) {
        analysis::analyzeProgram(t.program);
        analysis::analyzeProgramStatic(t.program);
    }
}

/**
 * Console reporter that also captures run times for the `benchmarks`
 * section of the metrics document — the trajectory CI diffs against.
 * Under --benchmark_repetitions with aggregates, only the median is
 * captured (one noise-tolerant number per benchmark); plain runs are
 * captured as-is.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CapturingReporter(obs::MetricsMeta &meta) : meta_(meta) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            if (run.run_type == Run::RT_Aggregate) {
                if (run.aggregate_name == "median") {
                    // run_name is the un-suffixed benchmark name (the
                    // display name would carry "_median").
                    meta_.benchmarks[run.run_name.str()] =
                        run.GetAdjustedRealTime();
                }
            } else {
                meta_.benchmarks[run.benchmark_name()] =
                    run.GetAdjustedRealTime();
            }
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    obs::MetricsMeta &meta_;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_selfperf");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter(opts.meta);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // Drop everything the adaptive timing loops recorded, then run the
    // deterministic fixed-work scenario the metrics document reports.
    // The Timeline reset matters under --timeline-interval: the timing
    // loops above publish a machine-dependent number of auto-labelled
    // engine runs, while the fixed scenario's single run is the only
    // deterministic timeline this document should carry.
    obs::CounterRegistry::instance().reset();
    obs::SelfProf::instance().reset();
    obs::Timeline::instance().reset();
    runFixedScenario();
    return bench::finish(opts);
}
