/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's own hot paths
 * (GEMM costing, TPC pipeline evaluation, collective costing). These
 * guard the interactive performance of the serving-engine simulations,
 * which evaluate thousands of step graphs.
 */

#include <benchmark/benchmark.h>

#include "coll/collective.h"
#include "kern/gemm.h"
#include "kern/stream.h"
#include "models/llama.h"
#include "tpc/dispatcher.h"

#include "bench_common.h"

using namespace vespera;

namespace {

void
BM_MmeGemmCost(benchmark::State &state)
{
    const hw::GemmShape shape{state.range(0), state.range(0),
                              state.range(0)};
    for (auto _ : state) {
        auto c = kern::runGemm(DeviceKind::Gaudi2, shape,
                               DataType::BF16);
        benchmark::DoNotOptimize(c.time);
    }
}
BENCHMARK(BM_MmeGemmCost)->Arg(1024)->Arg(8192);

void
BM_TensorCoreGemmCost(benchmark::State &state)
{
    const hw::GemmShape shape{state.range(0), state.range(0),
                              state.range(0)};
    for (auto _ : state) {
        auto c = kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
        benchmark::DoNotOptimize(c.time);
    }
}
BENCHMARK(BM_TensorCoreGemmCost)->Arg(1024)->Arg(8192);

void
BM_TpcStreamTrace(benchmark::State &state)
{
    kern::StreamConfig c;
    c.op = kern::StreamOp::Triad;
    c.numElements = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        auto r = kern::runStreamGaudi(c);
        benchmark::DoNotOptimize(r.gflops);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TpcStreamTrace)->Arg(1 << 16)->Arg(1 << 20);

void
BM_CollectiveCost(benchmark::State &state)
{
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    for (auto _ : state) {
        auto r = hccl.run(coll::CollectiveOp::AllReduce, 16 << 20, 8);
        benchmark::DoNotOptimize(r.time);
    }
}
BENCHMARK(BM_CollectiveCost);

void
BM_LlamaDecodeStepCost(benchmark::State &state)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    models::LlamaServingConfig cfg;
    for (auto _ : state) {
        Seconds t = model.stepTime(DeviceKind::Gaudi2, 32, 1, 1024,
                                   false, cfg);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_LlamaDecodeStepCost);

/**
 * Console reporter that also captures each run's real time, so the
 * harness can emit them in the `benchmarks` section of the metrics
 * document — the BENCH_*.json perf trajectory future PRs diff against.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CapturingReporter(obs::MetricsMeta &meta) : meta_(meta) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            meta_.benchmarks[run.benchmark_name()] =
                run.GetAdjustedRealTime();
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    obs::MetricsMeta &meta_;
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_selfperf");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter(opts.meta);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return bench::finish(opts);
}
