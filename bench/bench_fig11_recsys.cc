/**
 * @file
 * Regenerates Figure 11: Gaudi-2's single-device RecSys serving
 * speedup (a) and energy-efficiency improvement (b) over A100 for the
 * RM1 and RM2 DLRM configurations, sweeping batch size and embedding
 * vector size.
 *
 * Paper anchors: average slowdowns of 22% (RM1) and 18% (RM2); up to
 * 1.36x speedup at wide vectors + large batch; up to 70% loss for
 * <256 B vectors on RM2; ~12% higher power and ~28% worse energy
 * efficiency on average.
 */

#include <cstdio>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "models/dlrm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

namespace {

void
sweep(const models::DlrmConfig &base)
{
    models::DlrmConfig cfg = base;
    cfg.rowsPerTable = 1 << 13; // Functional-table footprint control.
    models::DlrmModel model(cfg);

    printHeading(strfmt("Figure 11: %s (Gaudi-2 relative to A100)",
                        cfg.name.c_str()));
    Table t({"Batch", "Emb vec (B)", "Speedup", "Power ratio",
             "Energy-eff ratio"});
    Accumulator speedups, power_ratio, eff;
    double best = 0, worst = 10;
    const std::vector<int> batches = {256, 1024, 4096};
    const std::vector<Bytes> vec_sizes = {64, 128, 256, 512};
    struct PointResult
    {
        double speedup = 0;
        double powerRatio = 0;
        double energyEff = 0;
    };
    runtime::SweepRunner sweepr(strfmt("fig11.%s", cfg.name.c_str()));
    auto points = sweepr.mapIndex(
        batches.size() * vec_sizes.size(), [&](std::size_t i) {
            models::DlrmRunConfig run;
            run.batch = batches[i / vec_sizes.size()];
            run.embVectorBytes = vec_sizes[i % vec_sizes.size()];
            // Each point draws from its own fixed-seed stream, exactly
            // as the serial loop did (seed was reset per point).
            Rng rng(1234);
            auto g = model.run(DeviceKind::Gaudi2, run, rng);
            auto a = model.run(DeviceKind::A100, run, rng);
            PointResult pr;
            pr.speedup = g.samplesPerSec / a.samplesPerSec;
            pr.powerRatio = g.power / a.power;
            pr.energyEff = g.samplesPerJoule / a.samplesPerJoule;
            return pr;
        });
    for (std::size_t b = 0; b < batches.size(); b++) {
        for (std::size_t v = 0; v < vec_sizes.size(); v++) {
            const PointResult &pr = points[b * vec_sizes.size() + v];
            speedups.add(pr.speedup);
            power_ratio.add(pr.powerRatio);
            eff.add(pr.energyEff);
            best = std::max(best, pr.speedup);
            worst = std::min(worst, pr.speedup);
            t.addRow({Table::integer(batches[b]),
                      Table::integer(
                          static_cast<long long>(vec_sizes[v])),
                      Table::num(pr.speedup, 2),
                      Table::num(pr.powerRatio, 2),
                      Table::num(pr.energyEff, 2)});
        }
    }
    t.print();
    std::printf("\n%s averages: speedup %.2fx (paper ~%.2fx), power "
                "%.2fx (paper ~1.12x), energy-eff %.2fx "
                "(paper ~0.72x avg across RM1+RM2)\n",
                cfg.name.c_str(), speedups.mean(),
                cfg.name == "RM1" ? 0.78 : 0.82, power_ratio.mean(),
                eff.mean());
    std::printf("Best case %.2fx (paper max 1.36x), worst %.2fx\n",
                best, worst);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig11_recsys");
    sweep(models::DlrmConfig::rm1());
    sweep(models::DlrmConfig::rm2());
    return bench::finish(opts);
}
