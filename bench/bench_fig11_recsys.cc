/**
 * @file
 * Regenerates Figure 11: Gaudi-2's single-device RecSys serving
 * speedup (a) and energy-efficiency improvement (b) over A100 for the
 * RM1 and RM2 DLRM configurations, sweeping batch size and embedding
 * vector size.
 *
 * Paper anchors: average slowdowns of 22% (RM1) and 18% (RM2); up to
 * 1.36x speedup at wide vectors + large batch; up to 70% loss for
 * <256 B vectors on RM2; ~12% higher power and ~28% worse energy
 * efficiency on average.
 */

#include <cstdio>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "models/dlrm.h"

#include "bench_common.h"

using namespace vespera;

namespace {

void
sweep(const models::DlrmConfig &base)
{
    models::DlrmConfig cfg = base;
    cfg.rowsPerTable = 1 << 13; // Functional-table footprint control.
    models::DlrmModel model(cfg);

    printHeading(strfmt("Figure 11: %s (Gaudi-2 relative to A100)",
                        cfg.name.c_str()));
    Table t({"Batch", "Emb vec (B)", "Speedup", "Power ratio",
             "Energy-eff ratio"});
    Accumulator speedups, power_ratio, eff;
    double best = 0, worst = 10;
    for (int batch : {256, 1024, 4096}) {
        for (Bytes vec : {64, 128, 256, 512}) {
            models::DlrmRunConfig run;
            run.batch = batch;
            run.embVectorBytes = vec;
            Rng rng(1234);
            auto g = model.run(DeviceKind::Gaudi2, run, rng);
            auto a = model.run(DeviceKind::A100, run, rng);
            const double speedup = g.samplesPerSec / a.samplesPerSec;
            const double pr = g.power / a.power;
            const double er = g.samplesPerJoule / a.samplesPerJoule;
            speedups.add(speedup);
            power_ratio.add(pr);
            eff.add(er);
            best = std::max(best, speedup);
            worst = std::min(worst, speedup);
            t.addRow({Table::integer(batch),
                      Table::integer(static_cast<long long>(vec)),
                      Table::num(speedup, 2), Table::num(pr, 2),
                      Table::num(er, 2)});
        }
    }
    t.print();
    std::printf("\n%s averages: speedup %.2fx (paper ~%.2fx), power "
                "%.2fx (paper ~1.12x), energy-eff %.2fx "
                "(paper ~0.72x avg across RM1+RM2)\n",
                cfg.name.c_str(), speedups.mean(),
                cfg.name == "RM1" ? 0.78 : 0.82, power_ratio.mean(),
                eff.mean());
    std::printf("Best case %.2fx (paper max 1.36x), worst %.2fx\n",
                best, worst);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig11_recsys");
    sweep(models::DlrmConfig::rm1());
    sweep(models::DlrmConfig::rm2());
    return bench::finish(opts);
}
