/**
 * @file
 * Ablation: the Gaudi graph compiler's optimization passes.
 *
 * The paper stresses that users cannot control these passes
 * (Section 2.2) and that vLLM_opt's win comes from structuring the
 * graph so the compiler can apply them (Section 4.2). This bench
 * toggles element-wise fusion and MME-TPC pipelining independently on
 * two representative graphs — a transformer MLP block and the DLRM
 * dense stack — and reports the execution-time impact.
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "graph/compiler.h"
#include "graph/executor.h"
#include "models/dlrm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

namespace {

/// Transformer MLP block: norm -> gate_up GEMM -> silu chain -> down.
graph::Graph
mlpBlock(std::int64_t tokens)
{
    graph::Graph g;
    const std::int64_t h = 4096, inter = 14336;
    int x = g.input({{tokens, h}, DataType::BF16}, "x");
    int n = g.normalization(x, 1, 4.0, "rmsnorm");
    int wgu = g.input({{h, 2 * inter}, DataType::BF16}, "w_gate_up");
    int gu = g.matmul(n, wgu, "gate_up");
    int silu = g.elementwiseTo({gu}, {{tokens, inter}, DataType::BF16},
                               4.0, true, "silu");
    int mul = g.elementwise({silu}, 1.0, false, "mul");
    int scale = g.elementwise({mul}, 1.0, false, "scale");
    int wd = g.input({{inter, h}, DataType::BF16}, "w_down");
    (void)g.matmul(scale, wd, "down");
    return g;
}

void
report(const char *name, const std::function<graph::Graph()> &make)
{
    printHeading(strfmt("Ablation: compiler passes on %s", name));
    Table t({"Fusion", "MME-TPC pipelining", "Time (us)",
             "HBM bytes (MB)", "vs no-opt"});
    const bool toggles[] = {false, true};
    runtime::SweepRunner sweepr("ablation.compiler");
    auto results = sweepr.mapIndex(4, [&](std::size_t i) {
        graph::Graph g = make();
        graph::CompilerOptions opts;
        opts.fuseElementwise = toggles[i / 2];
        opts.pipelineMmeTpc = toggles[i % 2];
        graph::Compiler(opts).compile(g);
        graph::Executor exec(DeviceKind::Gaudi2);
        return exec.run(g);
    });
    const double baseline = results[0].time; // fusion off, pipe off
    for (std::size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        t.addRow({toggles[i / 2] ? "on" : "off",
                  toggles[i % 2] ? "on" : "off",
                  Table::num(r.time * 1e6, 1),
                  Table::num(static_cast<double>(r.hbmBytes) / 1e6, 1),
                  Table::num(baseline / r.time, 2)});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_ablation_compiler");
    report("transformer MLP block (1024 tokens)",
           [] { return mlpBlock(1024); });
    report("transformer MLP block (64 tokens, decode-like)",
           [] { return mlpBlock(64); });

    models::DlrmConfig cfg = models::DlrmConfig::rm1();
    models::DlrmModel dlrm(cfg);
    models::DlrmRunConfig run;
    run.batch = 2048;
    report("DLRM RM1 dense stack (batch 2048)",
           [&] { return dlrm.buildDenseGraph(run); });
    return bench::finish(opts);
}
