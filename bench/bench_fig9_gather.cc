/**
 * @file
 * Regenerates Figure 9: HBM bandwidth utilization of vector gather and
 * scatter over random locations, sweeping the vector size (16..2048 B)
 * and the fraction of the array accessed.
 *
 * Paper anchors: >=256 B gathers average 64% (Gaudi-2) vs 72% (A100);
 * <=128 B drops to ~15% vs ~36% (a 2.4x gap) because of Gaudi's 256 B
 * minimum access granularity vs A100's 32 B sectors.
 *
 * The array is scaled down from the paper's 4M vectors so functional
 * verification stays cheap; utilization is size-invariant once past
 * the ramp.
 */

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/gather_scatter.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

namespace {

void
sweep(bool scatter)
{
    printHeading(strfmt("Figure 9(%s): vector %s bandwidth utilization",
                        scatter ? "b" : "a",
                        scatter ? "scatter" : "gather"));
    Table t({"Vector (B)", "Fraction", "Gaudi-2 util", "A100 util",
             "A100/Gaudi"});
    Accumulator g_small, g_big, a_small, a_big;
    const std::vector<Bytes> vecs = {16,  32,  64,   128,
                                     256, 512, 1024, 2048};
    const std::vector<double> fractions = {0.25, 1.0};
    struct PointResult
    {
        kern::GatherScatterResult gaudi;
        kern::GatherScatterResult a100;
    };
    runtime::SweepRunner sweepr(scatter ? "fig9b.scatter"
                                        : "fig9a.gather");
    auto points = sweepr.mapIndex(
        vecs.size() * fractions.size(), [&](std::size_t i) {
            const Bytes vec = vecs[i / fractions.size()];
            kern::GatherScatterConfig c;
            // Cap functional footprint; larger vectors use fewer rows.
            c.numVectors = std::min<std::uint64_t>(
                1ull << 17, (256ull << 20) / vec);
            c.vectorBytes = vec;
            c.accessFraction = fractions[i % fractions.size()];
            c.scatter = scatter;
            // Per-point seed: points share no Rng stream, so any
            // thread-count runs the same draws for the same point.
            Rng rng(42 + 1000003 * static_cast<std::uint64_t>(i));
            PointResult pr;
            pr.gaudi = kern::runGatherScatterGaudi(c, rng);
            pr.a100 = kern::runGatherScatterA100(c);
            return pr;
        });
    for (std::size_t v = 0; v < vecs.size(); v++) {
        for (std::size_t f = 0; f < fractions.size(); f++) {
            const Bytes vec = vecs[v];
            const double fraction = fractions[f];
            const PointResult &pr = points[v * fractions.size() + f];
            if (fraction == 1.0) {
                (vec >= 256 ? g_big : g_small)
                    .add(pr.gaudi.hbmUtilization);
                (vec >= 256 ? a_big : a_small)
                    .add(pr.a100.hbmUtilization);
            }
            t.addRow({Table::integer(static_cast<long long>(vec)),
                      Table::pct(fraction, 0),
                      Table::pct(pr.gaudi.hbmUtilization),
                      Table::pct(pr.a100.hbmUtilization),
                      Table::num(pr.a100.hbmUtilization /
                                     pr.gaudi.hbmUtilization,
                                 2)});
        }
    }
    t.print();
    if (!scatter) {
        std::printf("\n>=256 B average: Gaudi-2 %.0f%%, A100 %.0f%% "
                    "(paper: 64%% vs 72%%)\n",
                    g_big.mean() * 100, a_big.mean() * 100);
        std::printf("<=128 B average: Gaudi-2 %.0f%%, A100 %.0f%% "
                    "(paper: 15%% vs 36%%, a 2.4x gap)\n",
                    g_small.mean() * 100, a_small.mean() * 100);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig9_gather");
    sweep(false);
    sweep(true);
    return bench::finish(opts);
}
