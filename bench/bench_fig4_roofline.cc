/**
 * @file
 * Regenerates Figure 4: roofline of achieved BF16 TFLOPS on Gaudi-2
 * and A100 for square-shaped GEMMs (M=K=N) and irregularly-shaped
 * GEMMs (N fixed at 16).
 *
 * Paper anchors: Gaudi-2 outperforms A100 on every shape; it reaches
 * 429 TFLOPS (99.3% of peak) at M=K=N=8192; N=16 shapes sit on the
 * bandwidth slope.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/gemm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig4_roofline");
    printHeading("Figure 4: GEMM roofline (BF16)");
    std::printf("Square GEMMs (M=K=N) and irregular GEMMs (N=16).\n\n");

    std::vector<hw::GemmShape> shapes;
    for (std::int64_t s : {512, 1024, 2048, 4096, 8192, 16384})
        shapes.push_back({s, s, s});
    for (std::int64_t s : {2048, 4096, 8192, 16384, 32768})
        shapes.push_back({s, s, 16});

    Table table({"Shape (MxKxN)", "OI (flop/B)", "Gaudi-2 TFLOPS",
                 "A100 TFLOPS", "Gaudi/A100", "Gaudi bound",
                 "A100 bound"});
    runtime::SweepRunner sweepr("fig4.roofline");
    auto rows = sweepr.map(shapes, [&](const hw::GemmShape &shape) {
        auto g = kern::runGemm(DeviceKind::Gaudi2, shape,
                               DataType::BF16);
        auto a = kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
        const double oi =
            shape.flops() /
            static_cast<double>(shape.idealTraffic(DataType::BF16));
        return std::vector<std::string>{
            strfmt("%lldx%lldx%lld", static_cast<long long>(shape.m),
                   static_cast<long long>(shape.k),
                   static_cast<long long>(shape.n)),
            Table::num(oi, 1), Table::num(g.achievedFlops / TFLOPS, 1),
            Table::num(a.achievedFlops / TFLOPS, 1),
            Table::num(g.achievedFlops / a.achievedFlops, 2),
            g.memoryBound() ? "memory" : "compute",
            a.memoryBound() ? "memory" : "compute"};
    });
    for (auto &row : rows)
        table.addRow(std::move(row));
    table.print();
    return bench::finish(opts);
}
