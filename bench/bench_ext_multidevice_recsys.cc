/**
 * @file
 * Extension: multi-device RecSys serving.
 *
 * The paper serves RecSys on a single device because "Intel Gaudi SDK
 * currently lacks support for multi-device RecSys serving (a feature
 * natively supported in TorchRec for multi-GPUs)" (Section 3.5). This
 * bench implements the TorchRec sharding scheme on both simulated
 * systems — model-parallel embedding tables + AllToAll + data-parallel
 * dense — quantifying what Gaudi would gain from SDK support, and how
 * its P2P AllToAll deficit (Figure 10's one losing collective) eats
 * into the scaling.
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "models/dlrm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_ext_multidevice_recsys");
    models::DlrmConfig cfg = models::DlrmConfig::rm2();
    cfg.rowsPerTable = 1 << 13;
    models::DlrmModel model(cfg);

    models::DlrmRunConfig run;
    run.batch = 4096;
    run.embVectorBytes = 256;

    printHeading("Multi-device RM2 serving (TorchRec-style sharding, "
                 "batch 4096)");
    Table t({"Devices", "Device", "Emb (us)", "AllToAll (us)",
             "Dense (us)", "Samples/s", "Scaling", "Samples/J"});

    const std::vector<int> device_counts = {1, 2, 4, 8};
    const std::vector<DeviceKind> devices = {DeviceKind::Gaudi2,
                                             DeviceKind::A100};
    runtime::SweepRunner sweepr("ext_multidevice.scaling");
    auto reports = sweepr.mapIndex(
        device_counts.size() * devices.size(), [&](std::size_t i) {
            const int n = device_counts[i / devices.size()];
            const DeviceKind dev = devices[i % devices.size()];
            // Fresh fixed-seed stream per point, as the serial loop had.
            Rng rng(17);
            return n == 1 ? model.run(dev, run, rng)
                          : model.runMultiDevice(dev, run, n, rng);
        });
    double base_gaudi = 0, base_a100 = 0;
    for (std::size_t c = 0; c < device_counts.size(); c++) {
        for (std::size_t d = 0; d < devices.size(); d++) {
            const int n = device_counts[c];
            const DeviceKind dev = devices[d];
            const models::DlrmReport &r =
                reports[c * devices.size() + d];
            double &base = dev == DeviceKind::Gaudi2 ? base_gaudi
                                                     : base_a100;
            if (n == 1)
                base = r.samplesPerSec;
            t.addRow({Table::integer(n), deviceName(dev),
                      Table::num(r.embeddingTime * 1e6, 1),
                      Table::num(r.commTime * 1e6, 1),
                      Table::num(r.denseTime * 1e6, 1),
                      Table::num(r.samplesPerSec, 0),
                      Table::num(r.samplesPerSec / base, 2),
                      Table::num(r.samplesPerJoule, 0)});
        }
    }
    t.print();
    std::printf(
        "\nThe AllToAll exchange is the scaling tax: NVSwitch serves it "
        "at full\nbandwidth for any device count, while the P2P fabric "
        "only catches up\nas more devices (and thus more links) "
        "participate — the same effect\nas Figure 10, now at the "
        "application level.\n");
    return bench::finish(opts);
}
