/**
 * @file
 * Regenerates Table 1: hardware specification comparison of NVIDIA
 * A100 and Intel Gaudi-2.
 */

#include <cstdio>

#include "common/table.h"
#include "hw/device_spec.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_table1_specs");
    const auto &g = hw::gaudi2Spec();
    const auto &a = hw::a100Spec();

    printHeading("Table 1: NVIDIA A100 vs Intel Gaudi-2");
    Table t({"Metric", "A100", "Gaudi-2", "Ratio"});

    auto ratio = [](double gaudi, double a100) {
        return Table::num(gaudi / a100, 1) + "x";
    };

    t.addRow({"BF16 TFLOPS (matrix engines)",
              Table::num(a.matrixPeakBf16 / TFLOPS, 0),
              Table::num(g.matrixPeakBf16 / TFLOPS, 0),
              ratio(g.matrixPeakBf16, a.matrixPeakBf16)});
    t.addRow({"BF16 TFLOPS (vector engines)",
              Table::num(a.vectorPeakBf16 / TFLOPS, 0),
              Table::num(g.vectorPeakBf16 / TFLOPS, 0),
              ratio(g.vectorPeakBf16, a.vectorPeakBf16)});
    t.addRow({"HBM capacity (GB)",
              Table::num(static_cast<double>(a.hbmCapacity) / GiB, 0),
              Table::num(static_cast<double>(g.hbmCapacity) / GiB, 0),
              ratio(static_cast<double>(g.hbmCapacity),
                    static_cast<double>(a.hbmCapacity))});
    t.addRow({"HBM bandwidth (TB/s)",
              Table::num(a.hbmBandwidth / TB, 2),
              Table::num(g.hbmBandwidth / TB, 2),
              ratio(g.hbmBandwidth, a.hbmBandwidth)});
    t.addRow({"SRAM capacity (MB)",
              Table::num(static_cast<double>(a.sramCapacity) / MiB, 0),
              Table::num(static_cast<double>(g.sramCapacity) / MiB, 0),
              ratio(static_cast<double>(g.sramCapacity),
                    static_cast<double>(a.sramCapacity))});
    t.addRow({"Comm BW bidirectional (GB/s)",
              Table::num(a.commBandwidthBidir / GB, 0),
              Table::num(g.commBandwidthBidir / GB, 0),
              ratio(g.commBandwidthBidir, a.commBandwidthBidir)});
    t.addRow({"Power (W)", Table::num(a.tdp, 0), Table::num(g.tdp, 0),
              ratio(g.tdp, a.tdp)});
    t.addRow({"Min access granularity (B)",
              Table::integer(static_cast<long long>(
                  a.minAccessGranularity)),
              Table::integer(static_cast<long long>(
                  g.minAccessGranularity)),
              ratio(static_cast<double>(g.minAccessGranularity),
                    static_cast<double>(a.minAccessGranularity))});
    t.print();
    return bench::finish(opts);
}
