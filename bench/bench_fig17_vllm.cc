/**
 * @file
 * Regenerates Figure 17: the vLLM case study (Section 4.2).
 *
 *  (a) vLLM_opt's PagedAttention speedup over vLLM_base across
 *      sequence lengths and batch sizes (0% padding);
 *  (b) the same at seq=4K, batch=32, sweeping the zero-padded index
 *      fraction from 10% to 90%;
 *  (c) vLLM_opt vs A100 PagedAttention throughput;
 *  (d) end-to-end serving throughput vs max decode batch size;
 *  (e) mean TTFT and TPOT vs max decode batch size.
 *
 * Paper anchors: 7.4x average at 0% padding; up to 55.7x (avg 21x)
 * with padding; 45% of A100's PagedAttention throughput; end-to-end
 * parity with A100 on the Dynamic-Sonnet-style workload.
 */

#include <cstdio>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/paged_attention.h"
#include "runtime/sweep.h"
#include "serve/engine.h"

#include "bench_common.h"

using namespace vespera;
using kern::PagedAttentionConfig;
using kern::PagedAttentionImpl;

namespace {

void
optVsBase()
{
    printHeading("Figure 17(a): vLLM_opt speedup over vLLM_base "
                 "(0% padding)");
    Table t({"SeqLen", "Batch 8", "Batch 16", "Batch 32", "Batch 64"});
    Accumulator acc;
    const std::vector<std::int64_t> seqs = {1024, 2048, 4096};
    const std::vector<int> batches = {8, 16, 32, 64};
    runtime::SweepRunner sweepr("fig17a.opt_vs_base");
    auto speedups = sweepr.mapIndex(
        seqs.size() * batches.size(), [&](std::size_t i) {
            PagedAttentionConfig c;
            c.batch = batches[i % batches.size()];
            c.seqLen = seqs[i / batches.size()];
            auto base =
                kern::runPagedAttention(c, PagedAttentionImpl::GaudiBase);
            auto opt =
                kern::runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
            return base.time / opt.time;
        });
    for (std::size_t s = 0; s < seqs.size(); s++) {
        std::vector<std::string> row = {Table::integer(seqs[s])};
        for (std::size_t b = 0; b < batches.size(); b++) {
            const double sp = speedups[s * batches.size() + b];
            acc.add(sp);
            row.push_back(Table::num(sp, 1));
        }
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("Average speedup: %.1fx (paper: 7.4x)\n", acc.mean());
}

void
paddingSweep()
{
    printHeading("Figure 17(b): effect of zero-padded BlockTable "
                 "indices (seq 4K, batch 32)");
    Table t({"Padded fraction", "vLLM_opt speedup over vLLM_base"});
    Accumulator acc;
    double max_speedup = 0;
    const std::vector<double> pads = {0.1, 0.3, 0.5, 0.7, 0.9};
    runtime::SweepRunner sweepr("fig17b.padding");
    auto speedups = sweepr.map(pads, [](double pad) {
        PagedAttentionConfig c;
        c.batch = 32;
        c.seqLen = 4096;
        c.paddedFraction = pad;
        auto base =
            kern::runPagedAttention(c, PagedAttentionImpl::GaudiBase);
        c.paddedFraction = 0;
        auto opt =
            kern::runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
        return base.time / opt.time;
    });
    for (std::size_t i = 0; i < pads.size(); i++) {
        const double sp = speedups[i];
        acc.add(sp);
        max_speedup = std::max(max_speedup, sp);
        t.addRow({Table::pct(pads[i], 0), Table::num(sp, 1)});
    }
    t.print();
    std::printf("Average %.1fx (paper 21x), max %.1fx (paper 55.7x)\n",
                acc.mean(), max_speedup);
}

void
vsA100()
{
    printHeading("Figure 17(c): vLLM_opt (Gaudi-2) vs vLLM (A100) "
                 "PagedAttention throughput");
    Table t({"SeqLen", "Batch", "Gaudi-2/A100 throughput"});
    Accumulator acc;
    const std::vector<std::int64_t> seqs = {1024, 4096};
    const std::vector<int> batches = {8, 32, 64};
    runtime::SweepRunner sweepr("fig17c.vs_a100");
    auto rels = sweepr.mapIndex(
        seqs.size() * batches.size(), [&](std::size_t i) {
            PagedAttentionConfig c;
            c.batch = batches[i % batches.size()];
            c.seqLen = seqs[i / batches.size()];
            auto opt =
                kern::runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
            auto a100 = kern::runPagedAttention(
                c, PagedAttentionImpl::A100Fused);
            return a100.time / opt.time;
        });
    for (std::size_t s = 0; s < seqs.size(); s++) {
        for (std::size_t b = 0; b < batches.size(); b++) {
            const double rel = rels[s * batches.size() + b];
            acc.add(rel);
            t.addRow({Table::integer(seqs[s]),
                      Table::integer(batches[b]), Table::pct(rel)});
        }
    }
    t.print();
    std::printf("Average: %.0f%% of A100 (paper: 45%%)\n",
                acc.mean() * 100);
}

void
endToEnd()
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());

    printHeading("Figure 17(d,e): end-to-end serving vs max decode "
                 "batch (Dynamic-Sonnet-like trace)");
    Table t({"Max batch", "Gaudi tok/s", "A100 tok/s", "Gaudi/A100",
             "Gaudi TTFT (s)", "A100 TTFT (s)", "Gaudi TPOT (ms)",
             "A100 TPOT (ms)"});

    serve::TraceConfig tc;
    tc.numRequests = 128;

    const std::vector<int> max_batches = {4, 8, 16, 32, 64};
    struct PointResult
    {
        serve::ServingMetrics gaudi;
        serve::ServingMetrics a100;
    };
    runtime::SweepRunner sweepr("fig17de.end_to_end");
    auto points = sweepr.map(max_batches, [&](int max_batch) {
        Rng rng(99);
        auto trace = serve::makeDynamicTrace(tc, rng);

        serve::EngineConfig gcfg;
        gcfg.device = DeviceKind::Gaudi2;
        gcfg.maxDecodeBatch = max_batch;
        gcfg.attention = models::AttentionBackend::VllmOpt;
        serve::Engine gaudi(model, gcfg);

        serve::EngineConfig acfg = gcfg;
        acfg.device = DeviceKind::A100;
        serve::Engine a100(model, acfg);

        PointResult pr;
        pr.gaudi = gaudi.run(trace);
        pr.a100 = a100.run(trace);
        return pr;
    });
    for (std::size_t i = 0; i < max_batches.size(); i++) {
        const auto &gm = points[i].gaudi;
        const auto &am = points[i].a100;
        t.addRow({Table::integer(max_batches[i]),
                  Table::num(gm.throughputTokensPerSec, 0),
                  Table::num(am.throughputTokensPerSec, 0),
                  Table::num(gm.throughputTokensPerSec /
                                 am.throughputTokensPerSec, 2),
                  Table::num(gm.meanTtft, 2), Table::num(am.meanTtft, 2),
                  Table::num(gm.meanTpot * 1e3, 1),
                  Table::num(am.meanTpot * 1e3, 1)});
    }
    t.print();
    std::printf("\nPaper: vLLM_opt-based Gaudi-2 reaches end-to-end "
                "parity (~101%%) with A100.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig17_vllm");
    optVsBase();
    paddingSweep();
    vsA100();
    endToEnd();
    return bench::finish(opts);
}
