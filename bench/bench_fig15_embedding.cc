/**
 * @file
 * Regenerates Figure 15: memory-bandwidth utilization of the embedding
 * lookup operators (Section 4.1).
 *
 *  (a) SingleTable vs BatchedTable as the table count grows (small
 *      batch) — SingleTable stays flat, BatchedTable scales;
 *  (b,c) utilization across embedding vector sizes and batch sizes for
 *      SingleTable and BatchedTable (the gap narrows at large batch);
 *  (d) A100 FBGEMM comparison.
 *
 * Paper anchors: BatchedTable averages 34.2% utilization (peak 70.5%),
 * a 1.52x improvement over SingleTable; A100 averages 38.7% (peak
 * 81.8%); <256 B vectors: 12.0% vs 25.3%; the SDK's SingleTable is
 * ~37% of FBGEMM-A100 and our SingleTable is ~1.6x the SDK's.
 */

#include <cstdio>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/embedding.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;
using kern::EmbeddingConfig;
using kern::EmbeddingLayerGaudi;
using kern::EmbeddingVariant;

namespace {

EmbeddingConfig
rm2Config()
{
    EmbeddingConfig c;
    c.numTables = 20;
    c.rowsPerTable = 1 << 13;
    c.pooling = 20;
    c.vectorBytes = 256;
    c.batch = 256;
    return c;
}

void
tableSweep()
{
    printHeading("Figure 15(a): utilization vs table count "
                 "(batch 256, 256 B vectors)");
    Table t({"Tables", "SingleTable", "BatchedTable", "Batched gain"});
    const std::vector<int> table_counts = {1, 2, 5, 10, 20};
    runtime::SweepRunner sweepr("fig15a.tables");
    auto rows = sweepr.map(table_counts, [&](int tables) {
        EmbeddingConfig c = rm2Config();
        c.numTables = tables;
        EmbeddingLayerGaudi layer(c);
        Rng rng(7);
        auto single = layer.run(EmbeddingVariant::SingleTable, rng);
        auto batched = layer.run(EmbeddingVariant::BatchedTable, rng);
        return std::vector<std::string>{
            Table::integer(tables), Table::pct(single.hbmUtilization),
            Table::pct(batched.hbmUtilization),
            Table::num(single.time / batched.time, 2)};
    });
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print();
}

void
vectorBatchSweep()
{
    printHeading("Figure 15(b,c,d): utilization across vector size and "
                 "batch size");
    Table t({"Vec (B)", "Batch", "SDK-Single", "SingleTable",
             "BatchedTable", "A100 FBGEMM", "Batched/A100"});
    Accumulator g_all, g_small, a_all, a_small, gain;
    double g_peak = 0, a_peak = 0;
    const std::vector<Bytes> vec_sizes = {64, 128, 256, 512};
    const std::vector<int> batches = {256, 1024, 4096};
    struct PointResult
    {
        kern::EmbeddingResult sdk;
        kern::EmbeddingResult single;
        kern::EmbeddingResult batched;
        kern::EmbeddingResult a100;
    };
    runtime::SweepRunner sweepr("fig15bcd.vec_batch");
    auto points = sweepr.mapIndex(
        vec_sizes.size() * batches.size(), [&](std::size_t i) {
            EmbeddingConfig c = rm2Config();
            c.vectorBytes = vec_sizes[i / batches.size()];
            c.batch = batches[i % batches.size()];
            c.pooling = 10;
            EmbeddingLayerGaudi layer(c);
            Rng rng(11);
            PointResult pr;
            pr.sdk = layer.run(EmbeddingVariant::SdkSingleTable, rng);
            pr.single = layer.run(EmbeddingVariant::SingleTable, rng);
            pr.batched = layer.run(EmbeddingVariant::BatchedTable, rng);
            pr.a100 = kern::runEmbeddingA100(c);
            return pr;
        });
    for (std::size_t v = 0; v < vec_sizes.size(); v++) {
        for (std::size_t b = 0; b < batches.size(); b++) {
            const Bytes vec = vec_sizes[v];
            const PointResult &pr = points[v * batches.size() + b];

            g_all.add(pr.batched.hbmUtilization);
            a_all.add(pr.a100.hbmUtilization);
            if (vec < 256) {
                g_small.add(pr.batched.hbmUtilization);
                a_small.add(pr.a100.hbmUtilization);
            }
            g_peak = std::max(g_peak, pr.batched.hbmUtilization);
            a_peak = std::max(a_peak, pr.a100.hbmUtilization);
            gain.add(pr.single.time / pr.batched.time);

            t.addRow({Table::integer(static_cast<long long>(vec)),
                      Table::integer(batches[b]),
                      Table::pct(pr.sdk.hbmUtilization),
                      Table::pct(pr.single.hbmUtilization),
                      Table::pct(pr.batched.hbmUtilization),
                      Table::pct(pr.a100.hbmUtilization),
                      Table::num(pr.a100.time / pr.batched.time, 2)});
        }
    }
    t.print();
    std::printf("\nBatchedTable (Gaudi-2): avg %.1f%% util "
                "(paper 34.2%%), peak %.1f%% (paper 70.5%%)\n",
                g_all.mean() * 100, g_peak * 100);
    std::printf("A100 FBGEMM: avg %.1f%% (paper 38.7%%), peak %.1f%% "
                "(paper 81.8%%)\n",
                a_all.mean() * 100, a_peak * 100);
    std::printf("<256 B vectors: Gaudi %.1f%% vs A100 %.1f%% "
                "(paper 12.0%% vs 25.3%%)\n",
                g_small.mean() * 100, a_small.mean() * 100);
    std::printf("BatchedTable over SingleTable: avg %.2fx "
                "(paper 1.52x)\n",
                gain.mean());
}

void
peakUtilization()
{
    // Wide vectors + big batch land the peak-utilization corner.
    EmbeddingConfig c = rm2Config();
    c.vectorBytes = 2048;
    c.batch = 2048;
    c.pooling = 10;
    EmbeddingLayerGaudi layer(c);
    Rng rng(13);
    auto batched = layer.run(EmbeddingVariant::BatchedTable, rng);
    auto a100 = kern::runEmbeddingA100(c);
    printHeading("Peak corner (2048 B vectors, batch 2048)");
    std::printf("Gaudi-2 BatchedTable %.1f%%, A100 FBGEMM %.1f%%\n",
                batched.hbmUtilization * 100,
                a100.hbmUtilization * 100);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig15_embedding");
    tableSweep();
    vectorBatchSweep();
    peakUtilization();
    return bench::finish(opts);
}
