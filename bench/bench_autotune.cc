/**
 * @file
 * Design-space autotuner sweep: runs `vespera-lint tune` as a bench.
 *
 *  (a) the full registry tune — every tunable kernel screened through
 *      the proxy cost model and verified with the exact static
 *      scheduler; reports the best configuration found per kernel and
 *      the end-to-end throughput of the tuner itself,
 *  (b) an amplified screening sweep — each kernel's knob axes tiled
 *      4x so the cross product grows ~two orders of magnitude, which
 *      isolates proxy-screening throughput (the path that must run at
 *      thousands of configurations per second for tuning to stay
 *      interactive; the acceptance floor is 1000/s in Release).
 *
 * Tiling repeats only values already on the axes, so the exact
 * verification of the top-k never traces a configuration the shipped
 * space could not produce. Run with --selfprof to attribute the
 * screening loop (SelfCat::KernelEval) against trace/lift/schedule
 * time; configs/sec lands in the metrics document under "benchmarks".
 */

#include <chrono>
#include <cstdio>

#include "analysis/predict/tunable.h"
#include "analysis/predict/tuner.h"
#include "common/table.h"

#include "bench_common.h"

using namespace vespera;
using namespace vespera::analysis;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Every knob axis tiled `factor` times: the cross product grows by
 *  factor^(active axes) while anchors and top-k verification still see
 *  only shipped axis values. */
TunableKernel
amplifyAxes(const TunableKernel &k, int factor)
{
    TunableKernel a = k;
    auto tile = [factor](auto &axis) {
        if (axis.empty())
            return;
        auto base = axis;
        for (int i = 1; i < factor; i++)
            axis.insert(axis.end(), base.begin(), base.end());
    };
    tile(a.unrolls);
    tile(a.tpcCounts);
    tile(a.accessBytes);
    tile(a.accumulators);
    tile(a.interleaves);
    tile(a.geometries);
    return a;
}

std::uint64_t
fullSweep()
{
    printHeading("Autotune (a): full registry tune, proxy screen + "
                 "exact top-k verify");
    const auto start = std::chrono::steady_clock::now();
    const std::vector<TuneResult> results = autotuneAll();
    const double elapsed = secondsSince(start);

    Table t({"Kernel", "Base cycles", "Best cycles", "Gain",
             "Screened", "Verified", "Proxy err (ppm)"});
    std::uint64_t screened = 0;
    for (const TuneResult &r : results) {
        screened += r.configsScreened;
        t.addRow({r.kernel, Table::num(r.base.exactCycles, 0),
                  Table::num(r.best.exactCycles, 0),
                  Table::pct(r.improvementFrac),
                  Table::integer(static_cast<long long>(
                      r.configsScreened)),
                  Table::integer(static_cast<long long>(
                      r.exactVerifications)),
                  Table::integer(static_cast<long long>(
                      r.proxyErrorPpm))});
    }
    t.print();
    std::printf("%llu configs in %.3f s end-to-end (%.0f configs/s, "
                "anchors + screening + verification)\n",
                static_cast<unsigned long long>(screened), elapsed,
                static_cast<double>(screened) / elapsed);
    return screened;
}

void
amplifiedSweep(bench::Options &opts)
{
    constexpr int kTileFactor = 4;
    printHeading("Autotune (b): amplified screening sweep (axes "
                 "tiled 4x)");
    const TunableRegistry &reg = TunableRegistry::instance();
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t screened = 0;
    Table t({"Kernel", "Space", "Amplified", "Best cycles"});
    for (const std::string &name : reg.names()) {
        const TunableKernel &k = reg.get(name);
        const TunableKernel a = amplifyAxes(k, kTileFactor);
        const TuneResult r = autotuneKernel(a);
        screened += r.configsScreened;
        t.addRow({name,
                  Table::integer(static_cast<long long>(
                      k.configCount())),
                  Table::integer(static_cast<long long>(
                      r.configsScreened)),
                  Table::num(r.best.exactCycles, 0)});
    }
    const double elapsed = secondsSince(start);
    t.print();
    const double rate = static_cast<double>(screened) / elapsed;
    std::printf("%llu configs in %.3f s (%.0f configs/s; floor for "
                "interactive tuning: 1000/s)\n",
                static_cast<unsigned long long>(screened), elapsed,
                rate);
    opts.meta.benchmarks["autotune.amplified_configs_per_sec"] = rate;
    opts.meta.benchmarks["autotune.amplified_configs"] =
        static_cast<double>(screened);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_autotune");
    registerTunableKernels();

    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t sweepConfigs = fullSweep();
    opts.meta.benchmarks["autotune.sweep_configs_per_sec"] =
        static_cast<double>(sweepConfigs) / secondsSince(start);

    amplifiedSweep(opts);
    return bench::finish(opts);
}
