/**
 * @file
 * Extension: projecting the analysis onto Gaudi-3.
 *
 * The paper's footnote 1 states Gaudi-3's architecture is virtually
 * identical to Gaudi-2's (chiplet-scaled compute and bandwidth). This
 * bench reuses the same MME/HBM models with the Gaudi-3 specification
 * to project the Figure 4/5 GEMM results and the memory-bound decode
 * arithmetic forward one generation.
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "hw/mme.h"
#include "hw/tensor_core.h"
#include "mem/hbm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_ext_gaudi3");
    const auto &g3 = hw::gaudi3Spec();
    hw::MmeModel mme3(g3);
    hw::MmeModel mme2;
    hw::TensorCoreModel tc;

    printHeading("Projected GEMM throughput (BF16 TFLOPS)");
    Table t({"Shape", "A100", "Gaudi-2", "Gaudi-3 (proj.)",
             "G3 util"});
    const std::vector<std::int64_t> sizes = {1024, 4096, 8192, 16384};
    runtime::SweepRunner sweepr("ext_gaudi3.gemm");
    auto rows = sweepr.map(sizes, [&](std::int64_t s) {
        hw::GemmShape shape{s, s, s};
        auto a = tc.gemm(shape, DataType::BF16);
        auto g2 = mme2.gemm(shape, DataType::BF16);
        auto g3c = mme3.gemm(shape, DataType::BF16);
        return std::vector<std::string>{
            strfmt("%lld^3", static_cast<long long>(s)),
            Table::num(a.achievedFlops / TFLOPS, 0),
            Table::num(g2.achievedFlops / TFLOPS, 0),
            Table::num(g3c.achievedFlops / TFLOPS, 0),
            Table::pct(g3c.utilization)};
    });
    for (auto &row : rows)
        t.addRow(std::move(row));
    t.print();

    printHeading("Projected memory-bound LLM decode arithmetic");
    mem::HbmModel h2(hw::gaudi2Spec());
    mem::HbmModel h3(g3);
    mem::HbmModel ha(hw::a100Spec());
    const double weights_8b = 8e9 * 2; // Llama-8B BF16 weights.
    Table d({"Device", "Stream BW (TB/s)",
             "8B weight pass (ms)", "Decode tok/s (batch 1)"});
    struct Row { const char *name; const mem::HbmModel *m; };
    for (auto [name, m] : {Row{"A100", &ha}, Row{"Gaudi-2", &h2},
                           Row{"Gaudi-3 (proj.)", &h3}}) {
        const Seconds pass =
            m->streamTime(static_cast<Bytes>(weights_8b));
        d.addRow({name, Table::num(m->streamBandwidth() / TB, 2),
                  Table::num(pass * 1e3, 2),
                  Table::num(1.0 / pass, 0)});
    }
    d.print();

    printHeading("Spec ratios vs A100");
    Table s({"Metric", "Gaudi-2", "Gaudi-3 (proj.)"});
    const auto &g2s = hw::gaudi2Spec();
    const auto &as = hw::a100Spec();
    s.addRow({"Matrix BF16 peak",
              Table::num(g2s.matrixPeakBf16 / as.matrixPeakBf16, 2),
              Table::num(g3.matrixPeakBf16 / as.matrixPeakBf16, 2)});
    s.addRow({"HBM bandwidth",
              Table::num(g2s.hbmBandwidth / as.hbmBandwidth, 2),
              Table::num(g3.hbmBandwidth / as.hbmBandwidth, 2)});
    s.addRow({"Comm bandwidth",
              Table::num(g2s.commBandwidthBidir / as.commBandwidthBidir,
                         2),
              Table::num(g3.commBandwidthBidir / as.commBandwidthBidir,
                         2)});
    s.addRow({"TDP", Table::num(g2s.tdp / as.tdp, 2),
              Table::num(g3.tdp / as.tdp, 2)});
    s.print();
    return bench::finish(opts);
}
