/**
 * @file
 * Regenerates Figure 8: STREAM-style ADD/SCALE/TRIAD microbenchmarks.
 *
 *  (a) single-TPC throughput vs data access granularity (2..2048 B),
 *  (b) single-TPC throughput vs loop unroll factor,
 *  (c) chip throughput vs TPC count (weak scaling),
 *  (d,e,f) throughput and saturation utilization vs operational
 *          intensity, Gaudi-2 vs A100.
 *
 * Paper anchors: sharp drop below 256 B granularity; SCALE gains the
 * most from unrolling; chip saturation near 330/530/670 GFLOPS for
 * ADD/SCALE/TRIAD at 11-15 TPCs; intensity sweeps saturate at 50%
 * (ADD/SCALE) and ~99% (TRIAD) of vector peak on both devices.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/stream.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;
using kern::StreamConfig;
using kern::StreamOp;

namespace {

constexpr std::uint64_t singleTpcElems = 1ull << 20;
constexpr std::uint64_t chipElems = 24ull << 20;

const std::vector<StreamOp> ops = {StreamOp::Add, StreamOp::Scale,
                                   StreamOp::Triad};

void
granularitySweep()
{
    printHeading("Figure 8(a): single TPC, access granularity sweep "
                 "(no unrolling)");
    Table t({"Granularity (B)", "ADD GFLOPS", "SCALE GFLOPS",
             "TRIAD GFLOPS"});
    // Flattened gran x op points (gran-major = the serial loop order,
    // so the replayed counter sequence is unchanged).
    const std::vector<Bytes> grans = {4,   16,  64,   128,
                                      256, 512, 1024, 2048};
    runtime::SweepRunner sweep("fig8a.granularity");
    auto gflops =
        sweep.mapIndex(grans.size() * ops.size(), [&](std::size_t i) {
            StreamConfig c;
            c.op = ops[i % ops.size()];
            c.numElements = singleTpcElems;
            c.accessBytes = grans[i / ops.size()];
            c.unroll = 1;
            c.numTpcs = 1;
            return kern::runStreamGaudi(c).gflops;
        });
    for (std::size_t g = 0; g < grans.size(); g++) {
        std::vector<std::string> row = {
            Table::integer(static_cast<long long>(grans[g]))};
        for (std::size_t o = 0; o < ops.size(); o++)
            row.push_back(Table::num(gflops[g * ops.size() + o], 1));
        t.addRow(std::move(row));
    }
    t.print();
}

void
unrollSweep()
{
    printHeading("Figure 8(b): single TPC, unroll factor sweep (256 B)");
    Table t({"Unroll", "ADD GFLOPS", "SCALE GFLOPS", "TRIAD GFLOPS"});
    const std::vector<int> unrolls = {1, 2, 4, 8, 16};
    runtime::SweepRunner sweep("fig8b.unroll");
    auto gflops =
        sweep.mapIndex(unrolls.size() * ops.size(), [&](std::size_t i) {
            StreamConfig c;
            c.op = ops[i % ops.size()];
            c.numElements = singleTpcElems;
            c.unroll = unrolls[i / ops.size()];
            c.numTpcs = 1;
            return kern::runStreamGaudi(c).gflops;
        });
    for (std::size_t u = 0; u < unrolls.size(); u++) {
        std::vector<std::string> row = {Table::integer(unrolls[u])};
        for (std::size_t o = 0; o < ops.size(); o++)
            row.push_back(Table::num(gflops[u * ops.size() + o], 1));
        t.addRow(std::move(row));
    }
    t.print();
}

void
weakScaling()
{
    printHeading("Figure 8(c): weak scaling over TPC count "
                 "(24M elements, unroll 4)");
    Table t({"TPCs", "ADD GFLOPS", "SCALE GFLOPS", "TRIAD GFLOPS"});
    const std::vector<int> tpc_counts = {1, 2, 4, 8, 11, 15, 20, 24};
    runtime::SweepRunner sweep("fig8c.weak_scaling");
    auto gflops = sweep.mapIndex(
        tpc_counts.size() * ops.size(), [&](std::size_t i) {
            StreamConfig c;
            c.op = ops[i % ops.size()];
            c.numElements = chipElems;
            c.numTpcs = tpc_counts[i / ops.size()];
            return kern::runStreamGaudi(c).gflops;
        });
    for (std::size_t n = 0; n < tpc_counts.size(); n++) {
        std::vector<std::string> row = {Table::integer(tpc_counts[n])};
        for (std::size_t o = 0; o < ops.size(); o++)
            row.push_back(Table::num(gflops[n * ops.size() + o], 0));
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("\nPaper saturation: ~330 (ADD), ~530 (SCALE), "
                "~670 (TRIAD) GFLOPS at 11-15 TPCs.\n");
}

void
intensitySweep(StreamOp op, const char *panel)
{
    printHeading(strfmt("Figure 8(%s): %s operational-intensity sweep",
                        panel, kern::streamOpName(op)));
    Table t({"OI (flop/B)", "Gaudi-2 GFLOPS", "Gaudi-2 util",
             "A100 GFLOPS", "A100 util"});
    struct PointResult
    {
        kern::StreamResult gaudi;
        kern::StreamResult a100;
    };
    const std::vector<int> extras = {0, 2, 8, 32, 128, 512};
    runtime::SweepRunner sweep(strfmt("fig8%s.intensity", panel));
    auto points = sweep.map(extras, [&](int extra) {
        StreamConfig cg;
        cg.op = op;
        cg.numElements = 1ull << 20;
        cg.extraComputePerVector = extra;
        PointResult pr;
        pr.gaudi = kern::runStreamGaudi(cg);

        StreamConfig ca = cg;
        ca.numElements = 16ull << 20;
        pr.a100 = kern::runStreamA100(ca);
        return pr;
    });
    double g_sat = 0, a_sat = 0;
    for (const PointResult &pr : points) {
        g_sat = std::max(g_sat, pr.gaudi.vectorUtilization);
        a_sat = std::max(a_sat, pr.a100.vectorUtilization);
        t.addRow({Table::num(pr.gaudi.operationalIntensity, 2),
                  Table::num(pr.gaudi.gflops, 0),
                  Table::pct(pr.gaudi.vectorUtilization),
                  Table::num(pr.a100.gflops, 0),
                  Table::pct(pr.a100.vectorUtilization)});
    }
    t.print();
    std::printf("Saturation utilization: Gaudi-2 %.0f%%, A100 %.0f%% "
                "(paper: %s)\n",
                g_sat * 100, a_sat * 100,
                op == StreamOp::Triad ? "~99% both" : "~50% both");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig8_stream");
    granularitySweep();
    unrollSweep();
    weakScaling();
    intensitySweep(StreamOp::Add, "d");
    intensitySweep(StreamOp::Scale, "e");
    intensitySweep(StreamOp::Triad, "f");
    return bench::finish(opts);
}
