/**
 * @file
 * Regenerates Figure 8: STREAM-style ADD/SCALE/TRIAD microbenchmarks.
 *
 *  (a) single-TPC throughput vs data access granularity (2..2048 B),
 *  (b) single-TPC throughput vs loop unroll factor,
 *  (c) chip throughput vs TPC count (weak scaling),
 *  (d,e,f) throughput and saturation utilization vs operational
 *          intensity, Gaudi-2 vs A100.
 *
 * Paper anchors: sharp drop below 256 B granularity; SCALE gains the
 * most from unrolling; chip saturation near 330/530/670 GFLOPS for
 * ADD/SCALE/TRIAD at 11-15 TPCs; intensity sweeps saturate at 50%
 * (ADD/SCALE) and ~99% (TRIAD) of vector peak on both devices.
 */

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/stream.h"

#include "bench_common.h"

using namespace vespera;
using kern::StreamConfig;
using kern::StreamOp;

namespace {

constexpr std::uint64_t singleTpcElems = 1ull << 20;
constexpr std::uint64_t chipElems = 24ull << 20;

const std::vector<StreamOp> ops = {StreamOp::Add, StreamOp::Scale,
                                   StreamOp::Triad};

void
granularitySweep()
{
    printHeading("Figure 8(a): single TPC, access granularity sweep "
                 "(no unrolling)");
    Table t({"Granularity (B)", "ADD GFLOPS", "SCALE GFLOPS",
             "TRIAD GFLOPS"});
    for (Bytes gran : {4, 16, 64, 128, 256, 512, 1024, 2048}) {
        std::vector<std::string> row = {
            Table::integer(static_cast<long long>(gran))};
        for (StreamOp op : ops) {
            StreamConfig c;
            c.op = op;
            c.numElements = singleTpcElems;
            c.accessBytes = gran;
            c.unroll = 1;
            c.numTpcs = 1;
            row.push_back(Table::num(kern::runStreamGaudi(c).gflops, 1));
        }
        t.addRow(std::move(row));
    }
    t.print();
}

void
unrollSweep()
{
    printHeading("Figure 8(b): single TPC, unroll factor sweep (256 B)");
    Table t({"Unroll", "ADD GFLOPS", "SCALE GFLOPS", "TRIAD GFLOPS"});
    for (int unroll : {1, 2, 4, 8, 16}) {
        std::vector<std::string> row = {Table::integer(unroll)};
        for (StreamOp op : ops) {
            StreamConfig c;
            c.op = op;
            c.numElements = singleTpcElems;
            c.unroll = unroll;
            c.numTpcs = 1;
            row.push_back(Table::num(kern::runStreamGaudi(c).gflops, 1));
        }
        t.addRow(std::move(row));
    }
    t.print();
}

void
weakScaling()
{
    printHeading("Figure 8(c): weak scaling over TPC count "
                 "(24M elements, unroll 4)");
    Table t({"TPCs", "ADD GFLOPS", "SCALE GFLOPS", "TRIAD GFLOPS"});
    for (int tpcs : {1, 2, 4, 8, 11, 15, 20, 24}) {
        std::vector<std::string> row = {Table::integer(tpcs)};
        for (StreamOp op : ops) {
            StreamConfig c;
            c.op = op;
            c.numElements = chipElems;
            c.numTpcs = tpcs;
            row.push_back(Table::num(kern::runStreamGaudi(c).gflops, 0));
        }
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("\nPaper saturation: ~330 (ADD), ~530 (SCALE), "
                "~670 (TRIAD) GFLOPS at 11-15 TPCs.\n");
}

void
intensitySweep(StreamOp op, const char *panel)
{
    printHeading(strfmt("Figure 8(%s): %s operational-intensity sweep",
                        panel, kern::streamOpName(op)));
    Table t({"OI (flop/B)", "Gaudi-2 GFLOPS", "Gaudi-2 util",
             "A100 GFLOPS", "A100 util"});
    double g_sat = 0, a_sat = 0;
    for (int extra : {0, 2, 8, 32, 128, 512}) {
        StreamConfig cg;
        cg.op = op;
        cg.numElements = 1ull << 20;
        cg.extraComputePerVector = extra;
        auto g = kern::runStreamGaudi(cg);

        StreamConfig ca = cg;
        ca.numElements = 16ull << 20;
        auto a = kern::runStreamA100(ca);

        g_sat = std::max(g_sat, g.vectorUtilization);
        a_sat = std::max(a_sat, a.vectorUtilization);
        t.addRow({Table::num(g.operationalIntensity, 2),
                  Table::num(g.gflops, 0),
                  Table::pct(g.vectorUtilization),
                  Table::num(a.gflops, 0),
                  Table::pct(a.vectorUtilization)});
    }
    t.print();
    std::printf("Saturation utilization: Gaudi-2 %.0f%%, A100 %.0f%% "
                "(paper: %s)\n",
                g_sat * 100, a_sat * 100,
                op == StreamOp::Triad ? "~99% both" : "~50% both");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig8_stream");
    granularitySweep();
    unrollSweep();
    weakScaling();
    intensitySweep(StreamOp::Add, "d");
    intensitySweep(StreamOp::Scale, "e");
    intensitySweep(StreamOp::Triad, "f");
    return bench::finish(opts);
}
