/**
 * @file
 * Regenerates Figure 5: compute-utilization heatmaps for (a)
 * square-shaped GEMMs over an (M=K=N) sweep and (b) irregularly-shaped
 * GEMMs with N=16 over an (M, K) sweep.
 *
 * Paper anchors: Gaudi-2 beats A100 by an average of ~4.5 percentage
 * points of utilization, with the largest advantage around 2048^3.
 */

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "kern/gemm.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig5_gemm_util");
    const std::vector<std::int64_t> sizes = {512, 1024, 2048, 4096,
                                             8192, 16384};

    printHeading("Figure 5(a): square GEMM compute utilization");
    Table square({"M=K=N", "Gaudi-2 util", "A100 util", "Gap (pp)"});
    Accumulator gap;
    double max_rel = 0;
    std::int64_t max_rel_at = 0;
    struct UtilPair
    {
        double gaudi = 0;
        double a100 = 0;
    };
    runtime::SweepRunner sq_sweep("fig5a.square");
    auto square_utils = sq_sweep.map(sizes, [](std::int64_t s) {
        auto g = kern::runGemm(DeviceKind::Gaudi2, {s, s, s},
                               DataType::BF16);
        auto a = kern::runGemm(DeviceKind::A100, {s, s, s},
                               DataType::BF16);
        return UtilPair{g.utilization, a.utilization};
    });
    for (std::size_t i = 0; i < sizes.size(); i++) {
        const auto s = sizes[i];
        const UtilPair &u = square_utils[i];
        gap.add(u.gaudi - u.a100);
        if (u.gaudi / u.a100 > max_rel) {
            max_rel = u.gaudi / u.a100;
            max_rel_at = s;
        }
        square.addRow({Table::integer(s), Table::pct(u.gaudi),
                       Table::pct(u.a100),
                       Table::num((u.gaudi - u.a100) * 100, 1)});
    }
    square.print();
    std::printf("\nAverage utilization gap: %+.1f pp "
                "(paper: +4.5 pp avg)\n",
                gap.mean() * 100);
    std::printf("Largest relative advantage: %.2fx at %lld^3 "
                "(paper: 1.32x at 2048^3)\n",
                max_rel, static_cast<long long>(max_rel_at));

    printHeading("Figure 5(b): irregular GEMM (N=16) utilization");
    Table irr({"MxK", "Gaudi-2 util", "A100 util"});
    std::vector<hw::GemmShape> irr_shapes;
    for (auto m : sizes)
        for (auto k : {m / 2, m})
            irr_shapes.push_back({m, k, 16});
    runtime::SweepRunner irr_sweep("fig5b.irregular");
    auto irr_rows =
        irr_sweep.map(irr_shapes, [](const hw::GemmShape &shape) {
            auto g =
                kern::runGemm(DeviceKind::Gaudi2, shape, DataType::BF16);
            auto a =
                kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
            return std::vector<std::string>{
                strfmt("%lldx%lld", static_cast<long long>(shape.m),
                       static_cast<long long>(shape.k)),
                Table::pct(g.utilization), Table::pct(a.utilization)};
        });
    for (auto &row : irr_rows)
        irr.addRow(std::move(row));
    irr.print();
    return bench::finish(opts);
}
