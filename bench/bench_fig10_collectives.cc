/**
 * @file
 * Regenerates Figure 10: bus bandwidth utilization of the six
 * collective operations (AllReduce, AllGather, ReduceScatter,
 * AllToAll, Reduce, Broadcast) on HCCL/HLS-Gaudi-2 vs NCCL/DGX-A100,
 * for message sizes 2 KB..32 MB and 2/4/8 participating devices.
 *
 * Paper anchors: at 8 devices Gaudi-2 wins 5 of 6 collectives
 * (AllToAll is the exception); Gaudi-2's utilization declines roughly
 * linearly with fewer devices while A100's stays flat (NVSwitch).
 */

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "common/units.h"
#include "coll/collective.h"
#include "runtime/sweep.h"

#include "bench_common.h"

using namespace vespera;
using coll::CollectiveModel;
using coll::CollectiveOp;

int
main(int argc, char **argv)
{
    auto opts = bench::parseArgs(argc, argv, "bench_fig10_collectives");
    auto hccl = CollectiveModel::hcclOnGaudi2();
    auto nccl = CollectiveModel::ncclOnDgxA100();

    const CollectiveOp ops[] = {
        CollectiveOp::AllReduce,     CollectiveOp::AllGather,
        CollectiveOp::ReduceScatter, CollectiveOp::AllToAll,
        CollectiveOp::Reduce,        CollectiveOp::Broadcast,
    };

    std::vector<Bytes> sizes;
    for (Bytes size = 2 * 1024; size <= 32ull * 1024 * 1024; size *= 4)
        sizes.push_back(size);

    for (CollectiveOp op : ops) {
        printHeading(strfmt("Figure 10: %s bus-bandwidth utilization",
                            collectiveName(op)));
        Table t({"Size", "Gaudi-2 n=2", "Gaudi-2 n=4", "Gaudi-2 n=8",
                 "A100 n=2", "A100 n=4", "A100 n=8"});
        runtime::SweepRunner sweepr(
            strfmt("fig10.%s", collectiveName(op)));
        auto rows = sweepr.map(sizes, [&](Bytes size) {
            std::vector<std::string> row;
            if (size < 1024 * 1024) {
                row.push_back(strfmt("%llu KB",
                    static_cast<unsigned long long>(size / 1024)));
            } else {
                row.push_back(strfmt("%llu MB",
                    static_cast<unsigned long long>(size / 1024 /
                                                    1024)));
            }
            for (const auto *model : {&hccl, &nccl}) {
                for (int n : {2, 4, 8}) {
                    row.push_back(Table::pct(
                        model->run(op, size, n)
                            .busBandwidthUtilization));
                }
            }
            return row;
        });
        for (auto &row : rows)
            t.addRow(std::move(row));
        t.print();
    }

    printHeading("Summary at 32 MB, 8 devices (paper: Gaudi-2 wins "
                 "5 of 6)");
    Table s({"Collective", "Gaudi-2", "A100", "Winner"});
    int wins = 0;
    for (CollectiveOp op : ops) {
        auto g = hccl.run(op, 32ull << 20, 8);
        auto a = nccl.run(op, 32ull << 20, 8);
        const bool gaudi =
            g.busBandwidthUtilization > a.busBandwidthUtilization;
        wins += gaudi;
        s.addRow({collectiveName(op),
                  Table::pct(g.busBandwidthUtilization),
                  Table::pct(a.busBandwidthUtilization),
                  gaudi ? "Gaudi-2" : "A100"});
    }
    s.print();
    std::printf("\nGaudi-2 wins %d of 6 collectives at 8 devices.\n",
                wins);
    return bench::finish(opts);
}
